//! Discrete-event simulation of the LAU-SPC thread dynamics.
//!
//! The fluid model of [`crate::fluid`] is a mean-field idealisation; this
//! simulator runs the actual stochastic system — `m` threads alternating
//! between gradient computation (`~Tc`) and LAU-SPC attempts (`~Tu`) —
//! and measures loop occupancy, publish throughput, persistence aborts and
//! the scheduling-staleness component `τs` the paper analyses in §IV.2.
//!
//! Two departure semantics:
//!
//! * [`CasMode::Idealized`] — every completed attempt publishes. This is
//!   the assumption behind the paper's departure rate `μ = n/Tu`; the
//!   simulator's time-averaged occupancy should then match `n*`.
//! * [`CasMode::Realistic`] — an attempt publishes only if no other thread
//!   published since the attempt began (true CAS semantics), so under
//!   contention most attempts fail and retry. This quantifies how far the
//!   published fluid model sits from a faithful CAS execution — the gap
//!   the persistence bound `Tp` is designed to close.

use lsgd_tensor::SmallRng64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Departure semantics for completed LAU-SPC attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CasMode {
    /// Every attempt succeeds (paper's fluid-model assumption).
    Idealized,
    /// An attempt succeeds only when no concurrent publish intervened.
    Realistic,
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct DesConfig {
    /// Number of worker threads.
    pub m: usize,
    /// Mean gradient-computation time.
    pub tc: f64,
    /// Mean attempt (copy + update + CAS) time.
    pub tu: f64,
    /// Relative uniform jitter on every duration, in `[0, 1)`.
    pub jitter: f64,
    /// Persistence bound `Tp`: max failed CASes before aborting the
    /// update; `None` = unbounded (`LSH_ps∞`).
    pub persistence: Option<u32>,
    /// Departure semantics.
    pub mode: CasMode,
    /// Simulated time horizon.
    pub horizon: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DesConfig {
    fn default() -> Self {
        DesConfig {
            m: 16,
            tc: 40.0,
            tu: 0.8,
            jitter: 0.2,
            persistence: None,
            mode: CasMode::Realistic,
            horizon: 10_000.0,
            seed: 1,
        }
    }
}

/// Aggregated simulation outputs.
#[derive(Debug, Clone)]
pub struct DesResult {
    /// Time-averaged number of threads inside the LAU-SPC loop.
    pub mean_occupancy: f64,
    /// Total successful publishes.
    pub publishes: u64,
    /// Updates abandoned after exceeding the persistence bound.
    pub aborted: u64,
    /// Total failed CAS attempts.
    pub failed_attempts: u64,
    /// Per-publish scheduling staleness `τs` (publishes by others between
    /// loop entry and own publish), as a histogram.
    pub tau_s: lsgd_metrics_free::Histogram,
    /// Publish throughput per unit time.
    pub throughput: f64,
}

/// A tiny internal histogram so this crate stays dependency-free w.r.t.
/// the metrics crate (which depends on nothing here either, but keeping
/// the dynamics crate self-contained lets it be reused standalone).
pub mod lsgd_metrics_free {
    /// Minimal u64 histogram (unit bins + overflow), API-compatible with
    /// the subset of `lsgd_metrics::Histogram` the simulator needs.
    #[derive(Debug, Clone)]
    pub struct Histogram {
        bins: Vec<u64>,
        overflow: u64,
        count: u64,
        sum: u128,
    }

    impl Histogram {
        /// Unit bins `0..cap` plus overflow.
        pub fn new(cap: usize) -> Self {
            Histogram {
                bins: vec![0; cap],
                overflow: 0,
                count: 0,
                sum: 0,
            }
        }

        /// Records an observation.
        pub fn record(&mut self, v: u64) {
            if (v as usize) < self.bins.len() {
                self.bins[v as usize] += 1;
            } else {
                self.overflow += 1;
            }
            self.count += 1;
            self.sum += v as u128;
        }

        /// Observation count.
        pub fn count(&self) -> u64 {
            self.count
        }

        /// Mean observation.
        pub fn mean(&self) -> f64 {
            if self.count == 0 {
                0.0
            } else {
                self.sum as f64 / self.count as f64
            }
        }

        /// Count at unit bin `v`.
        pub fn bin(&self, v: usize) -> u64 {
            self.bins.get(v).copied().unwrap_or(0)
        }

        /// Count of observations ≥ cap.
        pub fn overflow(&self) -> u64 {
            self.overflow
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    FinishCompute,
    FinishAttempt,
}

/// Runs the simulation.
pub fn simulate(cfg: &DesConfig) -> DesResult {
    assert!(cfg.m > 0 && cfg.tc > 0.0 && cfg.tu > 0.0);
    assert!((0.0..1.0).contains(&cfg.jitter));
    let mut rng = SmallRng64::new(cfg.seed);
    let jittered = |mean: f64, rng: &mut SmallRng64| {
        mean * (1.0 + rng.range_f32(-cfg.jitter as f32, cfg.jitter as f32) as f64)
    };

    // Event queue ordered by time; simulated times are always finite, so
    // a total order on the f64 key is sound.
    #[derive(PartialEq)]
    struct OrdF64(f64);
    impl Eq for OrdF64 {}
    impl PartialOrd for OrdF64 {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for OrdF64 {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0
                .partial_cmp(&other.0)
                .expect("simulated time is never NaN")
        }
    }

    let mut queue: BinaryHeap<Reverse<(OrdF64, usize, Event)>> = BinaryHeap::new();

    // Per-thread state.
    let mut fails = vec![0u32; cfg.m];
    let mut loop_entry_pub = vec![0u64; cfg.m];
    let mut attempt_start_pub = vec![0u64; cfg.m];
    let mut publish_count = 0u64;

    // Stagger initial compute completions.
    for tid in 0..cfg.m {
        let t = jittered(cfg.tc, &mut rng) * (tid as f64 + 1.0) / cfg.m as f64;
        queue.push(Reverse((OrdF64(t), tid, Event::FinishCompute)));
    }

    let mut occupancy = 0usize;
    let mut occ_weighted = 0.0f64;
    let mut last_t = 0.0f64;
    let mut publishes = 0u64;
    let mut aborted = 0u64;
    let mut failed_attempts = 0u64;
    let mut tau_s = lsgd_metrics_free::Histogram::new(4 * cfg.m + 16);

    while let Some(Reverse((OrdF64(t), tid, ev))) = queue.pop() {
        if t > cfg.horizon {
            break;
        }
        occ_weighted += occupancy as f64 * (t - last_t);
        last_t = t;
        match ev {
            Event::FinishCompute => {
                // Enter the LAU-SPC loop.
                occupancy += 1;
                fails[tid] = 0;
                loop_entry_pub[tid] = publish_count;
                attempt_start_pub[tid] = publish_count;
                let dt = jittered(cfg.tu, &mut rng);
                queue.push(Reverse((OrdF64(t + dt), tid, Event::FinishAttempt)));
            }
            Event::FinishAttempt => {
                let success = match cfg.mode {
                    CasMode::Idealized => true,
                    CasMode::Realistic => attempt_start_pub[tid] == publish_count,
                };
                if success {
                    publish_count += 1;
                    publishes += 1;
                    tau_s.record(publish_count - 1 - loop_entry_pub[tid]);
                    occupancy -= 1;
                    let dt = jittered(cfg.tc, &mut rng);
                    queue.push(Reverse((OrdF64(t + dt), tid, Event::FinishCompute)));
                } else {
                    failed_attempts += 1;
                    fails[tid] += 1;
                    let exceeded = cfg
                        .persistence
                        .map(|tp| fails[tid] > tp)
                        .unwrap_or(false);
                    if exceeded {
                        // Abort: delete new_param, go recompute a gradient.
                        aborted += 1;
                        occupancy -= 1;
                        let dt = jittered(cfg.tc, &mut rng);
                        queue.push(Reverse((OrdF64(t + dt), tid, Event::FinishCompute)));
                    } else {
                        attempt_start_pub[tid] = publish_count;
                        let dt = jittered(cfg.tu, &mut rng);
                        queue.push(Reverse((OrdF64(t + dt), tid, Event::FinishAttempt)));
                    }
                }
            }
        }
    }

    let elapsed = last_t.max(f64::EPSILON);
    DesResult {
        mean_occupancy: occ_weighted / elapsed,
        publishes,
        aborted,
        failed_attempts,
        tau_s,
        throughput: publishes as f64 / elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::FluidModel;

    fn base() -> DesConfig {
        DesConfig {
            m: 16,
            tc: 40.0,
            tu: 0.8,
            jitter: 0.2,
            persistence: None,
            mode: CasMode::Idealized,
            horizon: 50_000.0,
            seed: 7,
        }
    }

    #[test]
    fn idealized_occupancy_matches_fluid_fixed_point() {
        let cfg = base();
        let res = simulate(&cfg);
        let fluid = FluidModel::new(cfg.m as f64, cfg.tc, cfg.tu);
        let predicted = fluid.fixed_point();
        let rel = (res.mean_occupancy - predicted).abs() / predicted;
        assert!(
            rel < 0.25,
            "occupancy {} vs fluid n* {predicted} (rel {rel})",
            res.mean_occupancy
        );
    }

    #[test]
    fn idealized_mode_never_fails() {
        let res = simulate(&base());
        assert_eq!(res.failed_attempts, 0);
        assert_eq!(res.aborted, 0);
        assert!(res.publishes > 1000);
    }

    #[test]
    fn realistic_mode_fails_under_contention() {
        // Tc/Tu small → crowded retry loop → failed CASes.
        let cfg = DesConfig {
            tc: 4.0,
            tu: 2.0,
            mode: CasMode::Realistic,
            horizon: 10_000.0,
            ..base()
        };
        let res = simulate(&cfg);
        assert!(res.failed_attempts > 0, "contention must cause CAS failures");
        assert!(res.publishes > 0);
    }

    #[test]
    fn persistence_zero_forces_zero_tau_s() {
        // The paper's §IV.2 claim: with Tp = 0, every published update had
        // no failed CAS, hence no competing publish since its gradient was
        // ready → τs = 0 exactly.
        let cfg = DesConfig {
            tc: 4.0,
            tu: 2.0,
            mode: CasMode::Realistic,
            persistence: Some(0),
            horizon: 20_000.0,
            ..base()
        };
        let res = simulate(&cfg);
        assert!(res.publishes > 100);
        assert_eq!(
            res.tau_s.bin(0),
            res.tau_s.count(),
            "all published updates must have tau_s = 0 under Tp = 0"
        );
        assert!(res.aborted > 0, "contended Tp=0 should abort some updates");
    }

    #[test]
    fn persistence_bound_reduces_mean_tau_s() {
        let mk = |tp: Option<u32>| {
            simulate(&DesConfig {
                tc: 8.0,
                tu: 2.0,
                mode: CasMode::Realistic,
                persistence: tp,
                horizon: 30_000.0,
                ..base()
            })
        };
        let unbounded = mk(None);
        let bounded = mk(Some(1));
        assert!(
            bounded.tau_s.mean() <= unbounded.tau_s.mean() + 1e-9,
            "Tp=1 mean τs {} should not exceed unbounded {}",
            bounded.tau_s.mean(),
            unbounded.tau_s.mean()
        );
    }

    #[test]
    fn throughput_bounded_by_service_rate() {
        // In realistic mode at most ~1 publish per Tu can occur.
        let cfg = DesConfig {
            tc: 2.0,
            tu: 1.0,
            mode: CasMode::Realistic,
            horizon: 20_000.0,
            ..base()
        };
        let res = simulate(&cfg);
        assert!(
            res.throughput <= 1.05 / cfg.tu,
            "throughput {} exceeds CAS serialisation bound",
            res.throughput
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = simulate(&base());
        let b = simulate(&base());
        assert_eq!(a.publishes, b.publishes);
        assert!((a.mean_occupancy - b.mean_occupancy).abs() < 1e-12);
    }

    #[test]
    fn more_threads_raise_occupancy() {
        let small = simulate(&DesConfig { m: 4, ..base() });
        let large = simulate(&DesConfig { m: 32, ..base() });
        assert!(large.mean_occupancy > small.mean_occupancy);
    }
}
