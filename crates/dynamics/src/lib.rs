#![warn(missing_docs)]
//! # lsgd-dynamics — the paper's Section IV thread-dynamics model
//!
//! Section IV of the Leashed-SGD paper models how worker threads flow
//! between gradient computation (duration `Tc`) and the LAU-SPC retry loop
//! (attempt duration `Tu`) as a fluid system:
//!
//! ```text
//! n_{t+1} = n_t + (m - n_t)/Tc - n_t/Tu          (eq. 4)
//! ```
//!
//! with closed form (Theorem 3), stable fixed point
//! `n* = m / (Tc/Tu + 1)` (Corollary 3.1), persistence-shifted fixed point
//! `n*_γ = m / ((1+γ) Tc/Tu + 1)` (Corollary 3.2), and the staleness
//! estimate `E[τs] ≈ n*_γ`.
//!
//! * [`fluid`] — the analytical model exactly as published.
//! * [`des`] — a discrete-event simulator of the same system, in both the
//!   paper's idealised departure semantics and a realistic CAS-contention
//!   mode, used to validate the fluid predictions (and the paper's claim
//!   that `Tp = 0` forces `τs = 0`).
//! * [`staleness`] — staleness estimators built on the fixed points.

pub mod des;
pub mod fluid;
pub mod staleness;

pub use des::{CasMode, DesConfig, DesResult};
pub use fluid::FluidModel;
