//! Staleness estimators built on the Section-IV fixed points.
//!
//! The paper decomposes the staleness of an update as `τ = τc + τs`
//! (following [4] in its reference list): `τc` counts updates published
//! while the gradient was being computed; `τs` counts competing updates
//! that won the LAU-SPC race before it. §IV.2 estimates `E[τs] ≈ n*_γ`
//! and observes that the compute-phase component behaves like the number
//! of other threads publishing during one computation.

use crate::fluid::FluidModel;

/// Model-based staleness estimates for a Leashed-SGD configuration.
#[derive(Debug, Clone, Copy)]
pub struct StalenessEstimate {
    /// Expected scheduling staleness `E[τs] ≈ n*_γ`.
    pub tau_s: f64,
    /// Expected compute-phase staleness `E[τc]`: publishes by other
    /// threads during one gradient computation.
    pub tau_c: f64,
    /// Expected total staleness `E[τ] = E[τc] + E[τs]`.
    pub tau_total: f64,
}

/// Estimates staleness for `m` threads with times `Tc`, `Tu` and a
/// persistence-induced extra departure factor `gamma ≥ 0`.
///
/// `E[τc]` is derived from throughput at the fixed point: the system
/// publishes at rate `n*_γ/Tu · 1/(1+something)` in the fluid idealisation;
/// using the paper's departure rate `μ = n(1+γ)/Tu` at the fixed point,
/// aggregate publish rate is `(m - n*_γ)/Tc` (flow balance), of which the
/// fraction `(m-1)/m` comes from *other* threads. One gradient computation
/// lasts `Tc`, so `E[τc] ≈ (m-1)/m · (m - n*_γ)/Tc · Tc = (m-1)/m · (m - n*_γ)`.
pub fn estimate(m: f64, tc: f64, tu: f64, gamma: f64) -> StalenessEstimate {
    let fluid = FluidModel::new(m, tc, tu);
    let n_star = fluid.fixed_point_gamma(gamma);
    let tau_s = n_star;
    let others = if m > 1.0 { (m - 1.0) / m } else { 0.0 };
    let tau_c = others * (m - n_star);
    StalenessEstimate {
        tau_s,
        tau_c,
        tau_total: tau_s + tau_c,
    }
}

/// Maps a persistence bound `Tp` onto the fluid model's extra departure
/// factor `γ`. With bound `Tp`, a thread departs forcibly after `Tp + 1`
/// failed attempts; treating each failed attempt as an independent
/// Bernoulli loss against the current winner, the forced-departure rate is
/// roughly proportional to `1/(Tp + 1)` of the service rate.
pub fn gamma_for_persistence(tp: Option<u32>) -> f64 {
    match tp {
        None => 0.0,
        Some(tp) => 1.0 / (tp as f64 + 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_s_equals_gamma_fixed_point() {
        let est = estimate(16.0, 40.0, 0.8, 0.5);
        let fluid = FluidModel::new(16.0, 40.0, 0.8);
        assert!((est.tau_s - fluid.fixed_point_gamma(0.5)).abs() < 1e-12);
    }

    #[test]
    fn total_is_sum_of_components() {
        let est = estimate(16.0, 40.0, 0.8, 0.0);
        assert!((est.tau_total - (est.tau_c + est.tau_s)).abs() < 1e-12);
    }

    #[test]
    fn single_thread_has_no_staleness_from_others() {
        let est = estimate(1.0, 10.0, 1.0, 0.0);
        assert_eq!(est.tau_c, 0.0);
        // τs can be ≤ n* < 1 — a single thread never loses the CAS race in
        // practice; the fluid value is its occupancy, not a count of losses.
        assert!(est.tau_s < 1.0);
    }

    #[test]
    fn staleness_grows_with_threads() {
        let small = estimate(4.0, 40.0, 0.8, 0.0);
        let large = estimate(64.0, 40.0, 0.8, 0.0);
        assert!(large.tau_total > small.tau_total);
    }

    #[test]
    fn persistence_reduces_tau_s() {
        let unbounded = estimate(16.0, 4.0, 2.0, gamma_for_persistence(None));
        let tp0 = estimate(16.0, 4.0, 2.0, gamma_for_persistence(Some(0)));
        let tp1 = estimate(16.0, 4.0, 2.0, gamma_for_persistence(Some(1)));
        assert!(tp0.tau_s < tp1.tau_s);
        assert!(tp1.tau_s < unbounded.tau_s);
    }

    #[test]
    fn gamma_mapping_monotone() {
        assert_eq!(gamma_for_persistence(None), 0.0);
        assert!(gamma_for_persistence(Some(0)) > gamma_for_persistence(Some(1)));
        assert!(gamma_for_persistence(Some(1)) > gamma_for_persistence(Some(10)));
    }
}
