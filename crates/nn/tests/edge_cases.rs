//! Edge-case and shape-robustness tests for the network substrate.

use lsgd_nn::activation::Relu;
use lsgd_nn::conv::Conv2d;
use lsgd_nn::dense::Dense;
use lsgd_nn::layer::Layer;
use lsgd_nn::network::Network;
use lsgd_nn::pool::MaxPool2d;
use lsgd_tensor::{Matrix, SmallRng64};

fn rand_batch(n: usize, dim: usize, classes: usize, seed: u64) -> (Matrix, Vec<u8>) {
    let mut rng = SmallRng64::new(seed);
    let x = Matrix::from_fn(n, dim, |_, _| rng.next_f32() - 0.5);
    let y = (0..n).map(|_| rng.next_below(classes) as u8).collect();
    (x, y)
}

#[test]
fn batch_of_one_works_everywhere() {
    let net = lsgd_nn::cnn_mnist();
    let theta = net.init_params(1);
    let mut ws = net.workspace(1);
    let (x, y) = rand_batch(1, 784, 10, 2);
    let mut grad = vec![0.0f32; net.param_len()];
    let loss = net.loss_grad(&theta, &x, &y, &mut grad, &mut ws);
    assert!(loss.is_finite());
    assert!(grad.iter().any(|&g| g != 0.0));
}

#[test]
fn single_layer_network() {
    let net = Network::new(vec![Box::new(Dense::new(4, 3))]);
    let theta = net.init_params(0);
    let mut ws = net.workspace(2);
    let (x, y) = rand_batch(2, 4, 3, 3);
    let mut grad = vec![0.0f32; net.param_len()];
    let loss = net.loss_grad(&theta, &x, &y, &mut grad, &mut ws);
    assert!(loss.is_finite());
}

#[test]
fn conv_only_network_gradcheck() {
    // Conv straight into the softmax loss (no dense head).
    let c = Conv2d::new(1, 5, 5, 3, 3); // -> 3x3x3 = 27 outputs
    let c_out = c.out_dim();
    let net = Network::new(vec![
        Box::new(c),
        Box::new(Dense::new(c_out, 3)),
    ]);
    let mut theta = net.init_params(4);
    theta.iter_mut().for_each(|v| *v *= 40.0);
    let (x, y) = rand_batch(3, 25, 3, 5);
    lsgd_nn::gradcheck::check_network_gradient(&net, &theta, &x, &y, 100, 1e-2)
        .assert_ok(3e-2, 0.2);
}

#[test]
fn pool_window_three() {
    let p = MaxPool2d::new(1, 9, 9, 3);
    assert_eq!((p.out_h(), p.out_w()), (3, 3));
    let x = Matrix::from_fn(1, 81, |_, c| (c % 81) as f32);
    let mut y = Matrix::zeros(1, 9);
    let mut cache = lsgd_nn::LayerCache::default();
    p.forward(&[], &x, &mut y, &mut cache, &mut lsgd_nn::StepCtx::default());
    // Window max of row-major ramp = bottom-right corner of each window.
    assert_eq!(y.get(0, 0), (2 * 9 + 2) as f32);
    assert_eq!(y.get(0, 8), (8 * 9 + 8) as f32);
}

#[test]
fn non_square_conv_input() {
    let c = Conv2d::new(2, 7, 4, 3, 2); // 7x4 input, 2x2 kernel -> 6x3
    assert_eq!(c.out_h(), 6);
    assert_eq!(c.out_w(), 3);
    assert_eq!(c.out_dim(), 3 * 18);
    let net = Network::new(vec![
        Box::new(c),
        Box::new(Dense::new(54, 2)),
    ]);
    let mut theta = net.init_params(6);
    theta.iter_mut().for_each(|v| *v *= 40.0);
    let (x, y) = rand_batch(2, 56, 2, 7);
    lsgd_nn::gradcheck::check_network_gradient(&net, &theta, &x, &y, 80, 1e-2)
        .assert_ok(3e-2, 0.2);
}

#[test]
fn zero_input_produces_uniform_logits() {
    let net = lsgd_nn::mlp_mnist();
    let theta = net.init_params(0);
    let mut ws = net.workspace(4);
    let x = Matrix::zeros(4, 784);
    let logits = net.forward(&theta, &x, &mut ws);
    // Zero input through biased-only dense layers: all rows identical.
    for r in 1..4 {
        assert_eq!(logits.row(0), logits.row(r));
    }
}

#[test]
#[should_panic]
fn wrong_theta_length_panics() {
    let net = lsgd_nn::tiny_mlp(4, 8, 3);
    let mut ws = net.workspace(1);
    let x = Matrix::zeros(1, 4);
    net.forward(&[0.0; 7], &x, &mut ws);
}

#[test]
#[should_panic]
fn wrong_input_width_panics() {
    let net = lsgd_nn::tiny_mlp(4, 8, 3);
    let theta = net.init_params(0);
    let mut ws = net.workspace(1);
    let x = Matrix::zeros(1, 5);
    net.forward(&theta, &x, &mut ws);
}

#[test]
#[should_panic]
fn batch_exceeding_workspace_panics() {
    let net = lsgd_nn::tiny_mlp(4, 8, 3);
    let theta = net.init_params(0);
    let mut ws = net.workspace(2);
    let x = Matrix::zeros(3, 4);
    net.forward(&theta, &x, &mut ws);
}

#[test]
fn relu_layer_between_pools_is_idempotent_on_nonnegatives() {
    // ReLU after max-pool of ReLU'd values must be the identity — the
    // reason Table III's "Pool ReLU" rows collapse (see architectures.rs).
    let relu = Relu::new(4);
    let x = Matrix::from_vec(1, 4, vec![0.0, 1.0, 2.0, 3.0]);
    let mut y = Matrix::zeros(1, 4);
    relu.forward(&[], &x, &mut y, &mut lsgd_nn::LayerCache::default(), &mut lsgd_nn::StepCtx::default());
    assert_eq!(x.as_slice(), y.as_slice());
}

#[test]
fn gradients_flow_through_entire_cnn() {
    // Every layer's parameter slice must receive a non-zero gradient for
    // a generic batch (no dead layers / disconnected backprop).
    let net = lsgd_nn::cnn_mnist();
    let mut theta = net.init_params(8);
    theta.iter_mut().for_each(|v| *v *= 20.0);
    let mut ws = net.workspace(4);
    let mut rng = SmallRng64::new(9);
    let x = Matrix::from_fn(4, 784, |_, _| rng.next_f32());
    let y = [0u8, 1, 2, 3];
    let mut grad = vec![0.0f32; net.param_len()];
    net.loss_grad(&theta, &x, &y, &mut grad, &mut ws);
    for i in 0..net.n_layers() {
        let slice = net.layer_params(i, &grad);
        if !slice.is_empty() {
            assert!(
                slice.iter().any(|&g| g != 0.0),
                "layer {i} received an all-zero gradient"
            );
        }
    }
}

#[test]
fn workspace_activation_accessor_matches_forward() {
    let net = lsgd_nn::tiny_mlp(4, 6, 2);
    let theta = net.init_params(1);
    let mut ws = net.workspace(2);
    let x = Matrix::from_fn(2, 4, |r, c| (r + c) as f32 * 0.1);
    let logits = net.forward(&theta, &x, &mut ws).clone();
    assert_eq!(ws.activation(0).as_slice(), x.as_slice());
    assert_eq!(
        ws.activation(net.n_layers()).as_slice(),
        logits.as_slice()
    );
}
