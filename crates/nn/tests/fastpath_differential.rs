//! Network-level differential tests for the zero-realloc gradient hot
//! path: the optimised compute path (prepacked weight panels, fused
//! threaded im2col, pool-parallel dense GEMMs) must produce **bitwise
//! identical** losses, activations, and gradients to the baseline path
//! (fresh packing per GEMM, fully serial) on the paper's own workload
//! shapes — scaled-down MLP and CNN stacks plus the real Table III CNN.
//!
//! Threading is exercised through an injected 4-thread runtime so the
//! parallel code paths run regardless of the host's core count.

use lsgd_nn::{ComputeOpts, Network, StepCtx};
use lsgd_runtime::{Handle, Runtime};
use lsgd_tensor::{Matrix, SmallRng64};
use std::sync::Arc;

fn rand_batch(n: usize, dim: usize, classes: usize, seed: u64) -> (Matrix, Vec<u8>) {
    let mut rng = SmallRng64::new(seed);
    let x = Matrix::from_fn(n, dim, |_, _| rng.next_f32() - 0.5);
    let y = (0..n).map(|_| rng.next_below(classes) as u8).collect();
    (x, y)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Runs `loss_grad` twice (to also cover warm panel-cache steps) under
/// `opts` and returns `(losses, gradients)`.
fn run_mode(
    net: &Network,
    theta: &[f32],
    x: &Matrix,
    y: &[u8],
    opts: ComputeOpts,
) -> (Vec<f32>, Vec<Vec<f32>>) {
    let mut ws = net.workspace(x.rows());
    ws.set_compute_opts(opts);
    let mut losses = Vec::new();
    let mut grads = Vec::new();
    let mut theta2 = theta.to_vec();
    for step in 0..2 {
        if step == 1 {
            // A second parameter version through the SAME workspace: the
            // panel cache must notice (epoch bump) even though the buffer
            // pointer is unchanged — the stable-local-copy worker pattern.
            for v in &mut theta2 {
                *v *= 1.25;
            }
        }
        let mut grad = vec![0.0f32; net.param_len()];
        losses.push(net.loss_grad(&theta2, x, y, &mut grad, &mut ws));
        grads.push(grad);
    }
    (losses, grads)
}

fn assert_modes_agree(net: &Network, batch: usize, seed: u64) {
    let theta = net.init_params(seed);
    let (x, y) = rand_batch(batch, net.in_dim(), net.n_classes(), seed + 1);
    let rt: Handle = Arc::new(Runtime::new(4)).into();
    let modes = [
        ("baseline", ComputeOpts::baseline()),
        ("panels-serial", ComputeOpts {
            panel_cache: true,
            threads: 1,
            runtime: Handle::Global,
        }),
        ("panels-parallel", ComputeOpts {
            panel_cache: true,
            threads: usize::MAX,
            runtime: rt.clone(),
        }),
        ("parallel-no-panels", ComputeOpts {
            panel_cache: false,
            threads: usize::MAX,
            runtime: rt,
        }),
    ];
    let reference = run_mode(net, &theta, &x, &y, modes[0].1.clone());
    for (name, opts) in &modes[1..] {
        let got = run_mode(net, &theta, &x, &y, opts.clone());
        for step in 0..2 {
            assert_eq!(
                reference.0[step].to_bits(),
                got.0[step].to_bits(),
                "loss diverged in mode {name}, step {step}"
            );
            assert_eq!(
                bits(&reference.1[step]),
                bits(&got.1[step]),
                "gradient diverged in mode {name}, step {step}"
            );
        }
    }
}

#[test]
fn mlp_gradients_bitwise_identical_across_modes() {
    // Shrunk Table II shape class: stacked Dense+ReLU. Batch 24 is big
    // enough that dX rides the packed (and prepacked) kernel.
    let net = lsgd_nn::tiny_mlp(50, 32, 7);
    assert_modes_agree(&net, 24, 3);
}

#[test]
fn cnn_gradients_bitwise_identical_across_modes() {
    use lsgd_nn::activation::Relu;
    use lsgd_nn::conv::Conv2d;
    use lsgd_nn::dense::Dense;
    use lsgd_nn::pool::MaxPool2d;
    use lsgd_nn::Layer;
    // Shrunk Table III shape class: conv → relu → pool → conv → relu →
    // dense, with ow < NR so fused panel rows straddle output rows.
    let c1 = Conv2d::new(1, 12, 12, 4, 3); // -> 4x10x10
    let p1 = MaxPool2d::new(4, 10, 10, 2); // -> 4x5x5
    let c2 = Conv2d::new(4, 5, 5, 8, 3); // -> 8x3x3
    let c1o = c1.out_dim();
    let c2o = c2.out_dim();
    let net = Network::new(vec![
        Box::new(c1),
        Box::new(Relu::new(c1o)),
        Box::new(p1),
        Box::new(c2),
        Box::new(Relu::new(c2o)),
        Box::new(Dense::new(c2o, 5)),
    ]);
    assert_modes_agree(&net, 16, 7);
}

#[test]
fn tiny_output_conv_gradients_bitwise_identical_across_modes() {
    use lsgd_nn::conv::Conv2d;
    use lsgd_nn::dense::Dense;
    use lsgd_nn::Layer;
    // out_h*out_w = 2*3 = 6 < 8: the dcols product sits in the small-m
    // regime where the fresh-operand path prefers the streaming naive
    // kernel — the prepacked path must follow the same policy or the
    // modes drift apart bitwise.
    let c = Conv2d::new(1, 4, 5, 3, 3);
    let co = c.out_dim();
    let net = Network::new(vec![Box::new(c), Box::new(Dense::new(co, 4))]);
    assert_modes_agree(&net, 9, 13);
}

#[test]
fn paper_cnn_gradients_bitwise_identical_across_modes() {
    // The real Table III CNN (d = 27,354) at a training-sized minibatch:
    // the exact geometry the sgd_step benchmark's >= 1.5x claim is about.
    let net = lsgd_nn::cnn_mnist();
    assert_modes_agree(&net, 12, 11);
}

#[test]
fn threaded_forward_matches_serial_lowering() {
    // Forward-only check at a batch large enough to trigger the conv
    // fan-out threshold on the paper CNN.
    let net = lsgd_nn::cnn_mnist();
    let theta = net.init_params(5);
    let (x, _) = rand_batch(32, net.in_dim(), net.n_classes(), 6);

    let mut ws_serial = net.workspace(32);
    ws_serial.set_compute_opts(ComputeOpts::baseline());
    let serial = net.forward(&theta, &x, &mut ws_serial).clone();

    let mut ws_par = net.workspace(32);
    ws_par.set_compute_opts(ComputeOpts {
        panel_cache: true,
        threads: usize::MAX,
        runtime: Runtime::new(4).into(),
    });
    let par = net.forward(&theta, &x, &mut ws_par).clone();
    assert_eq!(
        bits(serial.as_slice()),
        bits(par.as_slice()),
        "threaded fused lowering diverged from serial im2col"
    );
}

#[test]
fn panel_cache_packs_once_per_step() {
    let net = lsgd_nn::tiny_mlp(40, 24, 5);
    let theta = net.init_params(1);
    let (x, y) = rand_batch(16, 40, 5, 2);
    let mut ws = net.workspace(16);
    let mut grad = vec![0.0f32; net.param_len()];
    net.loss_grad(&theta, &x, &y, &mut grad, &mut ws);
    let (hits1, misses1) = ws.step_ctx().panels.stats();
    net.loss_grad(&theta, &x, &y, &mut grad, &mut ws);
    let (hits2, misses2) = ws.step_ctx().panels.stats();
    // tiny_mlp: 2 dense layers × 2 cached orientations = 4 packs/step.
    assert_eq!(misses1, 4, "first step packs each operand once");
    assert_eq!(misses2, 8, "second step repacks (new epoch), not more");
    assert_eq!(hits2, hits1, "within-step reuse identical across steps");
    let _ = StepCtx::default(); // exported type stays constructible
}
