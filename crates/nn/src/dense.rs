//! Densely-connected (fully-connected) layer.
//!
//! Implements the MLP building block of the paper's Appendix:
//! `o(l) = x · Wᵀ + b` with `W : (out, in)` and `b : (out)` taken from the
//! flat parameter slice as `[W row-major | b]`.
//!
//! The weight matrix participates in two of the three GEMMs a training
//! step issues — forward `Y = X·Wᵀ` and backward `dX = dY·W` — in two
//! different pack orientations. Both packings are served from the
//! per-step [`PackedPanelCache`] (packed on first touch, reused by the
//! other pass), and the large batch-dimension products run on the worker
//! pool via the parallel kernels, whose results are bitwise identical to
//! the serial ones. `dW = dYᵀ·X` involves only per-batch operands, so it
//! packs fresh (but also fans out across the pool).

use crate::layer::{Layer, LayerCache, StepCtx};
use lsgd_tensor::gemm::{
    gemm_flex, gemm_flex_parallel_in, gemm_slices, gemm_slices_parallel_in,
    small_m_prefers_naive, ASource, BSource, Transpose,
};
use lsgd_tensor::Matrix;

/// Fully-connected layer `y = x Wᵀ + b`.
#[derive(Debug, Clone)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
}

impl Dense {
    /// Creates a dense layer mapping `in_dim` features to `out_dim`.
    pub fn new(in_dim: usize, out_dim: usize) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "dense layer dims must be > 0");
        Dense { in_dim, out_dim }
    }

    /// Splits this layer's parameter slice into `(weights, bias)`.
    #[inline]
    fn split<'a>(&self, params: &'a [f32]) -> (&'a [f32], &'a [f32]) {
        params.split_at(self.in_dim * self.out_dim)
    }

    /// Splits this layer's mutable parameter slice into `(weights, bias)`.
    #[inline]
    fn split_mut<'a>(&self, params: &'a mut [f32]) -> (&'a mut [f32], &'a mut [f32]) {
        params.split_at_mut(self.in_dim * self.out_dim)
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "Dense"
    }

    fn in_dim(&self) -> usize {
        self.in_dim
    }

    fn out_dim(&self) -> usize {
        self.out_dim
    }

    fn param_len(&self) -> usize {
        self.in_dim * self.out_dim + self.out_dim
    }

    fn forward(
        &self,
        params: &[f32],
        input: &Matrix,
        output: &mut Matrix,
        _cache: &mut LayerCache,
        ctx: &mut StepCtx,
    ) {
        debug_assert_eq!(input.cols(), self.in_dim);
        let batch = input.rows();
        let (w, b) = self.split(params);
        let w_shape = (self.out_dim, self.in_dim);
        let (panels, use_panels, pool, threads) = ctx.split();
        // Y = X · Wᵀ   (batch,in) x (out,in)ᵀ -> (batch,out)
        // `tb = Yes` always takes the packed kernel, so the prepacked
        // orientation of W is usable at every batch size.
        if use_panels {
            let pb = panels.get_b(w, w_shape, Transpose::Yes);
            let asrc = ASource::Slices {
                a: input.as_slice(),
                shape: (batch, self.in_dim),
                trans: Transpose::No,
            };
            let bsrc = BSource::Prepacked(pb);
            let c_shape = (batch, self.out_dim);
            if threads > 1 {
                gemm_flex_parallel_in(pool, 1.0, &asrc, &bsrc, 0.0, output.as_mut_slice(), c_shape);
            } else {
                gemm_flex(1.0, &asrc, &bsrc, 0.0, output.as_mut_slice(), c_shape);
            }
        } else if threads > 1 {
            gemm_slices_parallel_in(
                pool,
                1.0,
                input.as_slice(),
                (batch, self.in_dim),
                Transpose::No,
                w,
                w_shape,
                Transpose::Yes,
                0.0,
                output.as_mut_slice(),
                (batch, self.out_dim),
            );
        } else {
            gemm_slices(
                1.0,
                input.as_slice(),
                (batch, self.in_dim),
                Transpose::No,
                w,
                w_shape,
                Transpose::Yes,
                0.0,
                output.as_mut_slice(),
                (batch, self.out_dim),
            );
        }
        // += bias, broadcast over rows.
        for r in 0..batch {
            let row = output.row_mut(r);
            for (o, &bi) in row.iter_mut().zip(b) {
                *o += bi;
            }
        }
    }

    fn backward(
        &self,
        params: &[f32],
        input: &Matrix,
        _output: &Matrix,
        grad_out: &Matrix,
        _cache: &mut LayerCache,
        ctx: &mut StepCtx,
        grad_params: &mut [f32],
        grad_in: &mut Matrix,
    ) {
        let batch = input.rows();
        let (w, _) = self.split(params);
        let w_shape = (self.out_dim, self.in_dim);
        let (dw, db) = self.split_mut(grad_params);
        let (panels, use_panels, pool, threads) = ctx.split();

        // dW = dYᵀ · X   (out,batch) x (batch,in) -> (out,in)
        // `tn` rides the packed kernel via A-panel packing — no
        // transposed copy of dY is materialised and no scalar fallback
        // runs (this product dominated Tc before the packed kernel).
        // Both operands are fresh per step, so nothing to prepack; the
        // parallel kernel is bitwise identical to the serial one.
        if threads > 1 {
            gemm_slices_parallel_in(
                pool,
                1.0,
                grad_out.as_slice(),
                (batch, self.out_dim),
                Transpose::Yes,
                input.as_slice(),
                (batch, self.in_dim),
                Transpose::No,
                0.0,
                dw,
                w_shape,
            );
        } else {
            gemm_slices(
                1.0,
                grad_out.as_slice(),
                (batch, self.out_dim),
                Transpose::Yes,
                input.as_slice(),
                (batch, self.in_dim),
                Transpose::No,
                0.0,
                dw,
                w_shape,
            );
        }
        // db = column sums of dY.
        db.iter_mut().for_each(|v| *v = 0.0);
        for r in 0..batch {
            let row = grad_out.row(r);
            for (d, &g) in db.iter_mut().zip(row) {
                *d += g;
            }
        }
        // dX = dY · W   (batch,out) x (out,in) -> (batch,in)
        // Tiny batches prefer the streaming naive kernel; matching that
        // policy here (instead of forcing the prepacked packed kernel)
        // keeps results bitwise identical to the fresh-operand path.
        if use_panels && !small_m_prefers_naive(batch, Transpose::No) {
            let pb = panels.get_b(w, w_shape, Transpose::No);
            let asrc = ASource::Slices {
                a: grad_out.as_slice(),
                shape: (batch, self.out_dim),
                trans: Transpose::No,
            };
            let bsrc = BSource::Prepacked(pb);
            let c_shape = (batch, self.in_dim);
            if threads > 1 {
                gemm_flex_parallel_in(pool, 1.0, &asrc, &bsrc, 0.0, grad_in.as_mut_slice(), c_shape);
            } else {
                gemm_flex(1.0, &asrc, &bsrc, 0.0, grad_in.as_mut_slice(), c_shape);
            }
        } else if threads > 1 {
            gemm_slices_parallel_in(
                pool,
                1.0,
                grad_out.as_slice(),
                (batch, self.out_dim),
                Transpose::No,
                w,
                w_shape,
                Transpose::No,
                0.0,
                grad_in.as_mut_slice(),
                (batch, self.in_dim),
            );
        } else {
            gemm_slices(
                1.0,
                grad_out.as_slice(),
                (batch, self.out_dim),
                Transpose::No,
                w,
                w_shape,
                Transpose::No,
                0.0,
                grad_in.as_mut_slice(),
                (batch, self.in_dim),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsgd_tensor::rng::std_rng;

    #[test]
    fn param_len_counts_weights_and_bias() {
        let l = Dense::new(784, 128);
        assert_eq!(l.param_len(), 784 * 128 + 128);
    }

    #[test]
    fn forward_matches_manual_single_neuron() {
        let l = Dense::new(2, 1);
        // W = [2, 3], b = [1] → y = 2x0 + 3x1 + 1
        let params = vec![2.0, 3.0, 1.0];
        let x = Matrix::from_vec(2, 2, vec![1.0, 1.0, 0.5, -1.0]);
        let mut y = Matrix::zeros(2, 1);
        let mut cache = LayerCache::default();
        l.forward(&params, &x, &mut y, &mut cache, &mut StepCtx::default());
        assert!((y.get(0, 0) - 6.0).abs() < 1e-6);
        assert!((y.get(1, 0) - (-1.0)).abs() < 1e-6);
    }

    #[test]
    fn bias_broadcasts_across_batch() {
        let l = Dense::new(1, 3);
        let params = vec![0.0, 0.0, 0.0, 10.0, 20.0, 30.0]; // zero W, bias only
        let x = Matrix::zeros(4, 1);
        let mut y = Matrix::zeros(4, 3);
        l.forward(
            &params,
            &x,
            &mut y,
            &mut LayerCache::default(),
            &mut StepCtx::default(),
        );
        for r in 0..4 {
            assert_eq!(y.row(r), &[10.0, 20.0, 30.0]);
        }
    }

    #[test]
    fn backward_shapes_and_bias_grad() {
        let l = Dense::new(3, 2);
        let mut rng = std_rng(1);
        let mut params = vec![0.0f32; l.param_len()];
        l.init_params(&mut params, &mut rng);
        let x = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut y = Matrix::zeros(2, 2);
        let mut cache = LayerCache::default();
        let mut ctx = StepCtx::default();
        l.forward(&params, &x, &mut y, &mut cache, &mut ctx);
        let dy = Matrix::from_vec(2, 2, vec![1.0, 0.0, 1.0, 0.0]);
        let mut dp = vec![0.0f32; l.param_len()];
        let mut dx = Matrix::zeros(2, 3);
        l.backward(&params, &x, &y, &dy, &mut cache, &mut ctx, &mut dp, &mut dx);
        // bias gradient = column sums of dy = [2, 0]
        assert_eq!(&dp[6..], &[2.0, 0.0]);
        // dW row 0 = sum over batch of x rows = [5, 7, 9]; row 1 = zeros
        assert_eq!(&dp[0..3], &[5.0, 7.0, 9.0]);
        assert_eq!(&dp[3..6], &[0.0, 0.0, 0.0]);
    }

    /// Prepacked/parallel and fresh-pack/serial dense paths must agree
    /// bitwise (the same invariant the tensor-level differential suite
    /// checks, asserted here through the layer API).
    #[test]
    fn panel_cache_and_parallel_paths_agree_bitwise() {
        use lsgd_runtime::Runtime;
        let l = Dense::new(37, 19);
        let batch = 24;
        let mut rng = lsgd_tensor::SmallRng64::new(5);
        let params: Vec<f32> = (0..l.param_len()).map(|_| rng.next_f32() - 0.5).collect();
        let x = Matrix::from_fn(batch, 37, |_, _| rng.next_f32() - 0.5);
        let dy = Matrix::from_fn(batch, 19, |_, _| rng.next_f32() - 0.5);

        let mut results: Vec<(Vec<f32>, Vec<f32>, Vec<f32>)> = Vec::new();
        for (use_panels, threads) in [(false, 1usize), (true, 1), (true, 4), (false, 4)] {
            let mut ctx = StepCtx {
                use_panels,
                threads,
                runtime: Runtime::new(threads).into(),
                ..StepCtx::default()
            };
            ctx.panels.begin_step();
            let mut cache = LayerCache::default();
            let mut y = Matrix::zeros(batch, 19);
            l.forward(&params, &x, &mut y, &mut cache, &mut ctx);
            let mut dp = vec![0.0f32; l.param_len()];
            let mut dx = Matrix::zeros(batch, 37);
            l.backward(&params, &x, &y, &dy, &mut cache, &mut ctx, &mut dp, &mut dx);
            results.push((y.as_slice().to_vec(), dp, dx.as_slice().to_vec()));
        }
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        for (i, r) in results.iter().enumerate().skip(1) {
            assert_eq!(bits(&results[0].0), bits(&r.0), "forward mode {i}");
            assert_eq!(bits(&results[0].1), bits(&r.1), "dparams mode {i}");
            assert_eq!(bits(&results[0].2), bits(&r.2), "dx mode {i}");
        }
    }

    #[test]
    fn init_params_draws_small_values() {
        let l = Dense::new(100, 100);
        let mut rng = std_rng(7);
        let mut params = vec![0.0f32; l.param_len()];
        l.init_params(&mut params, &mut rng);
        let max = params.iter().fold(0.0f32, |a, &b| a.max(b.abs()));
        assert!(max < 0.1, "N(0,0.01) samples should be small, got {max}");
        assert!(params.iter().any(|&v| v != 0.0));
    }
}
