//! Fused softmax + cross-entropy loss.
//!
//! The paper's output layer applies softmax and trains against the
//! cross-entropy loss `L = -Σ y_i log(ŷ_i)` (Appendix). Fusing the two
//! yields the numerically friendly gradient `dL/dz = (softmax(z) - onehot)/B`
//! and avoids ever materialising log-probabilities.

use lsgd_tensor::numeric;
use lsgd_tensor::Matrix;

/// Mean cross-entropy of a batch of logits against integer class labels.
///
/// Returns the mean loss; `labels[i]` must be `< logits.cols()`.
///
/// # Panics
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
pub fn cross_entropy_loss(logits: &Matrix, labels: &[u8]) -> f32 {
    assert_eq!(logits.rows(), labels.len(), "batch size mismatch");
    let mut total = 0.0f32;
    for (r, &y) in labels.iter().enumerate() {
        total += numeric::cross_entropy_from_logits(logits.row(r), y as usize);
    }
    total / labels.len().max(1) as f32
}

/// Computes the mean cross-entropy loss *and* the logit gradient
/// `(softmax(z) - onehot(y)) / batch` in one pass.
///
/// `grad` must have the same shape as `logits`.
///
/// # Panics
/// Panics on shape mismatches or out-of-range labels.
pub fn cross_entropy_loss_grad(logits: &Matrix, labels: &[u8], grad: &mut Matrix) -> f32 {
    assert_eq!(logits.rows(), labels.len(), "batch size mismatch");
    assert_eq!(grad.rows(), logits.rows());
    assert_eq!(grad.cols(), logits.cols());
    let batch = labels.len().max(1) as f32;
    let inv_batch = 1.0 / batch;
    let mut total = 0.0f32;
    for (r, &y) in labels.iter().enumerate() {
        let y = y as usize;
        assert!(y < logits.cols(), "label {y} out of range");
        let z = logits.row(r);
        let g = grad.row_mut(r);
        g.copy_from_slice(z);
        numeric::softmax_inplace(g);
        // loss contribution: -log softmax[y], computed stably from logits.
        total += numeric::cross_entropy_from_logits(z, y);
        g[y] -= 1.0;
        for v in g.iter_mut() {
            *v *= inv_batch;
        }
    }
    total * inv_batch
}

/// Fraction of rows whose argmax equals the label.
pub fn accuracy(logits: &Matrix, labels: &[u8]) -> f32 {
    assert_eq!(logits.rows(), labels.len());
    if labels.is_empty() {
        return 0.0;
    }
    let preds = logits.argmax_rows();
    let correct = preds
        .iter()
        .zip(labels)
        .filter(|(p, y)| **p == **y as usize)
        .count();
    correct as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Matrix::zeros(4, 10);
        let labels = [0u8, 3, 7, 9];
        let loss = cross_entropy_loss(&logits, &labels);
        assert!((loss - (10f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_prediction_gives_near_zero_loss() {
        let mut logits = Matrix::zeros(2, 3);
        logits.set(0, 1, 30.0);
        logits.set(1, 2, 30.0);
        let loss = cross_entropy_loss(&logits, &[1, 2]);
        assert!(loss < 1e-5);
    }

    #[test]
    fn grad_matches_softmax_minus_onehot() {
        let logits = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let mut grad = Matrix::zeros(1, 3);
        cross_entropy_loss_grad(&logits, &[0], &mut grad);
        let mut sm = [1.0f32, 2.0, 3.0];
        lsgd_tensor::numeric::softmax_inplace(&mut sm);
        assert!((grad.get(0, 0) - (sm[0] - 1.0)).abs() < 1e-6);
        assert!((grad.get(0, 1) - sm[1]).abs() < 1e-6);
        assert!((grad.get(0, 2) - sm[2]).abs() < 1e-6);
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        let logits = Matrix::from_vec(2, 4, vec![0.5, -1.0, 2.0, 0.0, 3.0, 3.0, 3.0, 3.0]);
        let mut grad = Matrix::zeros(2, 4);
        cross_entropy_loss_grad(&logits, &[2, 0], &mut grad);
        for r in 0..2 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6, "row {r} sums to {s}");
        }
    }

    #[test]
    fn loss_and_grad_loss_agree() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 0.0, -1.0, 0.3, 0.2, 0.1]);
        let labels = [2u8, 1];
        let mut grad = Matrix::zeros(2, 3);
        let l1 = cross_entropy_loss(&logits, &labels);
        let l2 = cross_entropy_loss_grad(&logits, &labels, &mut grad);
        assert!((l1 - l2).abs() < 1e-6);
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Matrix::from_vec(3, 2, vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
        assert!((accuracy(&logits, &[0, 1, 0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn out_of_range_label_panics() {
        let logits = Matrix::zeros(1, 3);
        let mut grad = Matrix::zeros(1, 3);
        cross_entropy_loss_grad(&logits, &[3], &mut grad);
    }
}
