//! 2-D convolution layer (valid padding, stride 1) via im2col + GEMM.
//!
//! Matches the paper's CNN building block (Appendix, Table III): filters of
//! shape `k × k` over `in_c` input channels, no padding — which is exactly
//! what reproduces the published parameter count `d = 27,354`.
//!
//! Data layout: each sample's feature map is flattened NCHW into one matrix
//! row, i.e. `row = [c0 row-major HxW | c1 ... ]`. The im2col lowering
//! turns each sample into a `(out_h*out_w, in_c*k*k)` patch matrix so the
//! convolution becomes one GEMM per sample — the same "many small GEMMs"
//! cost profile the paper measures for its CNN (high `Tc`, low `Tu`).

use crate::layer::{Layer, LayerCache};
use lsgd_tensor::gemm::{gemm_slices, Transpose};
use lsgd_tensor::Matrix;

/// Convolutional layer: `filters` output channels, `k × k` kernels, valid
/// padding, stride 1, bias per filter.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_c: usize,
    in_h: usize,
    in_w: usize,
    filters: usize,
    k: usize,
}

impl Conv2d {
    /// Creates a conv layer over `in_c × in_h × in_w` inputs.
    ///
    /// # Panics
    /// Panics if the kernel does not fit the input.
    pub fn new(in_c: usize, in_h: usize, in_w: usize, filters: usize, k: usize) -> Self {
        assert!(k > 0 && filters > 0);
        assert!(
            in_h >= k && in_w >= k,
            "kernel {k}x{k} larger than input {in_h}x{in_w}"
        );
        Conv2d {
            in_c,
            in_h,
            in_w,
            filters,
            k,
        }
    }

    /// Output height (valid padding, stride 1).
    #[inline]
    pub fn out_h(&self) -> usize {
        self.in_h - self.k + 1
    }

    /// Output width (valid padding, stride 1).
    #[inline]
    pub fn out_w(&self) -> usize {
        self.in_w - self.k + 1
    }

    /// Output channel count.
    #[inline]
    pub fn out_c(&self) -> usize {
        self.filters
    }

    #[inline]
    fn patch_len(&self) -> usize {
        self.in_c * self.k * self.k
    }

    /// Lowers one sample (flattened NCHW row) into the im2col patch matrix
    /// `(out_h*out_w, in_c*k*k)`.
    fn im2col(&self, sample: &[f32], cols: &mut Matrix) {
        let (oh, ow, k) = (self.out_h(), self.out_w(), self.k);
        debug_assert_eq!(cols.rows(), oh * ow);
        debug_assert_eq!(cols.cols(), self.patch_len());
        let hw = self.in_h * self.in_w;
        for oy in 0..oh {
            for ox in 0..ow {
                let dst = cols.row_mut(oy * ow + ox);
                let mut idx = 0;
                for c in 0..self.in_c {
                    let chan = &sample[c * hw..(c + 1) * hw];
                    for ky in 0..k {
                        let src_off = (oy + ky) * self.in_w + ox;
                        dst[idx..idx + k].copy_from_slice(&chan[src_off..src_off + k]);
                        idx += k;
                    }
                }
            }
        }
    }

    /// Scatter-adds a column-gradient matrix `(out_h*out_w, in_c*k*k)` back
    /// into one sample's input gradient (col2im).
    fn col2im_add(&self, dcols: &Matrix, dsample: &mut [f32]) {
        let (oh, ow, k) = (self.out_h(), self.out_w(), self.k);
        let hw = self.in_h * self.in_w;
        for oy in 0..oh {
            for ox in 0..ow {
                let src = dcols.row(oy * ow + ox);
                let mut idx = 0;
                for c in 0..self.in_c {
                    let chan = &mut dsample[c * hw..(c + 1) * hw];
                    for ky in 0..k {
                        let dst_off = (oy + ky) * self.in_w + ox;
                        for kx in 0..k {
                            chan[dst_off + kx] += src[idx + kx];
                        }
                        idx += k;
                    }
                }
            }
        }
    }

    /// Splits this layer's parameter slice into `(filter weights, bias)`.
    #[inline]
    fn split<'a>(&self, params: &'a [f32]) -> (&'a [f32], &'a [f32]) {
        params.split_at(self.filters * self.patch_len())
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn in_dim(&self) -> usize {
        self.in_c * self.in_h * self.in_w
    }

    fn out_dim(&self) -> usize {
        self.filters * self.out_h() * self.out_w()
    }

    fn param_len(&self) -> usize {
        self.filters * self.patch_len() + self.filters
    }

    fn forward(&self, params: &[f32], input: &Matrix, output: &mut Matrix, cache: &mut LayerCache) {
        let batch = input.rows();
        let (w, b) = self.split(params);
        let (oh, ow) = (self.out_h(), self.out_w());
        let ohw = oh * ow;
        if cache.im2col.rows() != ohw || cache.im2col.cols() != self.patch_len() {
            cache.im2col.resize_zeroed(ohw, self.patch_len());
        }
        for s in 0..batch {
            self.im2col(input.row(s), &mut cache.im2col);
            // out_sample (filters, ohw) = W (filters, patch) x colsᵀ (patch, ohw)
            let out_row = output.row_mut(s);
            gemm_slices(
                1.0,
                w,
                (self.filters, self.patch_len()),
                Transpose::No,
                cache.im2col.as_slice(),
                (ohw, self.patch_len()),
                Transpose::Yes,
                0.0,
                out_row,
                (self.filters, ohw),
            );
            for f in 0..self.filters {
                let bias = b[f];
                for v in &mut out_row[f * ohw..(f + 1) * ohw] {
                    *v += bias;
                }
            }
        }
    }

    fn backward(
        &self,
        params: &[f32],
        input: &Matrix,
        _output: &Matrix,
        grad_out: &Matrix,
        _cache: &LayerCache,
        grad_params: &mut [f32],
        grad_in: &mut Matrix,
    ) {
        let batch = input.rows();
        let (w, _) = self.split(params);
        let (oh, ow) = (self.out_h(), self.out_w());
        let ohw = oh * ow;
        let patch = self.patch_len();

        grad_params.iter_mut().for_each(|v| *v = 0.0);
        grad_in.fill_zero();
        let (dw, db) = grad_params.split_at_mut(self.filters * patch);

        // The forward cache's im2col content corresponds to the *last*
        // sample only, so re-lower each sample here. Scratch matrices are
        // local to avoid aliasing the shared cache.
        let mut cols = Matrix::zeros(ohw, patch);
        let mut dcols = Matrix::zeros(ohw, patch);
        for s in 0..batch {
            self.im2col(input.row(s), &mut cols);
            let dy = grad_out.row(s); // (filters, ohw) flattened

            // dW += dY (filters, ohw) · cols (ohw, patch)
            // Per-sample products with `filters` output rows: below
            // gemm's small-m cutoff (the paper CNN's 4-filter conv) they
            // stay on the streaming naive path, where such shapes are
            // fastest; at or above it (the 8-filter conv) the packed
            // kernel takes over at parity or better.
            gemm_slices(
                1.0,
                dy,
                (self.filters, ohw),
                Transpose::No,
                cols.as_slice(),
                (ohw, patch),
                Transpose::No,
                1.0,
                dw,
                (self.filters, patch),
            );
            // db[f] += sum of dY over spatial positions.
            for f in 0..self.filters {
                db[f] += dy[f * ohw..(f + 1) * ohw].iter().sum::<f32>();
            }
            // dcols = dYᵀ (ohw, filters) · W (filters, patch)
            gemm_slices(
                1.0,
                dy,
                (self.filters, ohw),
                Transpose::Yes,
                w,
                (self.filters, patch),
                Transpose::No,
                0.0,
                dcols.as_mut_slice(),
                (ohw, patch),
            );
            self.col2im_add(&dcols, grad_in.row_mut(s));
        }
    }

    fn describe(&self) -> String {
        format!(
            "Conv2d {}x{}x{} -> {}x{}x{} (k={})",
            self.in_c,
            self.in_h,
            self.in_w,
            self.filters,
            self.out_h(),
            self.out_w(),
            self.k
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct (non-im2col) reference convolution for one sample.
    fn conv_ref(l: &Conv2d, params: &[f32], sample: &[f32]) -> Vec<f32> {
        let (w, b) = l.split(params);
        let (oh, ow, k) = (l.out_h(), l.out_w(), l.k);
        let hw = l.in_h * l.in_w;
        let mut out = vec![0.0f32; l.filters * oh * ow];
        for f in 0..l.filters {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = b[f];
                    for c in 0..l.in_c {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iv = sample[c * hw + (oy + ky) * l.in_w + (ox + kx)];
                                let wv = w[f * l.patch_len() + c * k * k + ky * k + kx];
                                acc += iv * wv;
                            }
                        }
                    }
                    out[f * oh * ow + oy * ow + ox] = acc;
                }
            }
        }
        out
    }

    #[test]
    fn table_iii_parameter_counts() {
        // Conv1: 4 filters, 3x3, 1 channel → 4*9 + 4 = 40 params.
        let c1 = Conv2d::new(1, 28, 28, 4, 3);
        assert_eq!(c1.param_len(), 40);
        assert_eq!(c1.out_dim(), 4 * 26 * 26);
        // Conv2: 8 filters, 3x3 over 4 channels of 13x13 → 8*36 + 8 = 296.
        let c2 = Conv2d::new(4, 13, 13, 8, 3);
        assert_eq!(c2.param_len(), 296);
        assert_eq!(c2.out_dim(), 8 * 11 * 11);
    }

    #[test]
    fn forward_matches_direct_convolution() {
        let l = Conv2d::new(2, 6, 5, 3, 3);
        let mut rng = lsgd_tensor::SmallRng64::new(42);
        let params: Vec<f32> = (0..l.param_len()).map(|_| rng.next_f32() - 0.5).collect();
        let x = Matrix::from_fn(2, l.in_dim(), |_, _| rng.next_f32() - 0.5);
        let mut y = Matrix::zeros(2, l.out_dim());
        l.forward(&params, &x, &mut y, &mut LayerCache::default());
        for s in 0..2 {
            let want = conv_ref(&l, &params, x.row(s));
            for (a, b) in y.row(s).iter().zip(&want) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn identity_kernel_recovers_input_patch() {
        // Single 1x1 filter with weight 1, bias 0 → output == input.
        let l = Conv2d::new(1, 4, 4, 1, 1);
        let params = vec![1.0, 0.0];
        let x = Matrix::from_fn(1, 16, |_, c| c as f32);
        let mut y = Matrix::zeros(1, 16);
        l.forward(&params, &x, &mut y, &mut LayerCache::default());
        assert_eq!(x.as_slice(), y.as_slice());
    }

    #[test]
    fn bias_only_network_outputs_bias() {
        let l = Conv2d::new(1, 5, 5, 2, 3);
        let mut params = vec![0.0f32; l.param_len()];
        params[l.filters * l.patch_len()] = 1.5; // bias of filter 0
        params[l.filters * l.patch_len() + 1] = -2.5; // bias of filter 1
        let x = Matrix::zeros(1, 25);
        let mut y = Matrix::zeros(1, l.out_dim());
        l.forward(&params, &x, &mut y, &mut LayerCache::default());
        let ohw = 9;
        assert!(y.row(0)[..ohw].iter().all(|&v| v == 1.5));
        assert!(y.row(0)[ohw..].iter().all(|&v| v == -2.5));
    }

    #[test]
    fn backward_bias_gradient_sums_spatial_positions() {
        let l = Conv2d::new(1, 4, 4, 1, 3);
        let params = vec![0.0f32; l.param_len()];
        let x = Matrix::zeros(1, 16);
        let y = Matrix::zeros(1, 4);
        let dy = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let mut dp = vec![0.0f32; l.param_len()];
        let mut dx = Matrix::zeros(1, 16);
        l.backward(&params, &x, &y, &dy, &LayerCache::default(), &mut dp, &mut dx);
        assert_eq!(dp[l.param_len() - 1], 10.0);
    }
}
