//! 2-D convolution layer (valid padding, stride 1) via im2col + GEMM.
//!
//! Matches the paper's CNN building block (Appendix, Table III): filters of
//! shape `k × k` over `in_c` input channels, no padding — which is exactly
//! what reproduces the published parameter count `d = 27,354`.
//!
//! Data layout: each sample's feature map is flattened NCHW into one matrix
//! row, i.e. `row = [c0 row-major HxW | c1 ... ]`. The im2col lowering
//! turns each sample into a `(out_h*out_w, in_c*k*k)` patch matrix so the
//! convolution becomes one GEMM per sample — the same "many small GEMMs"
//! cost profile the paper measures for its CNN (high `Tc`, low `Tu`).
//!
//! # The zero-realloc fast path
//!
//! The default execution path restructures that cost profile in three
//! ways, all bitwise-neutral to the result:
//!
//! 1. **Fused lowering** — the forward pass never materialises the im2col
//!    matrix. The GEMM's `B` operand is generated *directly in packed
//!    panel layout* from the sample's feature map
//!    ([`Conv2d::pack_patches`] plugged in as a [`BSource::Packer`]),
//!    producing byte-identical panels to `im2col` + `pack_b` while
//!    skipping one full write+strided-read pass over the lowered data.
//! 2. **Prepacked filters** — the filter matrix `W` participates in every
//!    per-sample product of the minibatch, in two orientations (as `A` in
//!    the forward product, as `B` in the backward `dcols` product). Both
//!    packings are produced once per SGD step via the worker's
//!    [`PackedPanelCache`] and reused across all samples.
//! 3. **Threaded sample loop** — per-sample work (lowering, GEMMs,
//!    col2im) fans out over the tensor crate's worker pool in contiguous
//!    sample ranges. Weight gradients are computed into per-sample slab
//!    entries (`LayerCache::grad_slab`) and reduced in ascending sample
//!    order afterwards, so the floating-point association — and thus
//!    every output bit — matches the serial sweep.
//!
//! A serial, fresh-pack, materialised-im2col path is kept (reached when
//! the [`StepCtx`] disables both panels and threading) as the benchmark
//! *ablation* baseline; differential tests assert the two paths agree
//! bitwise. Note the baseline is not a byte-faithful replica of the
//! pre-PR code: its backward shares the per-sample-slab accumulation
//! structure above (the bitwise-parity guarantee requires one shared
//! association), so it isolates the cost of panels + fusion + threading
//! specifically — comparisons against the true pre-PR tree are done from
//! a clean git worktree (see the README performance section).

use crate::layer::{Layer, LayerCache, RowsPtr, StepCtx};
use lsgd_tensor::gemm::{gemm_flex, gemm_slices, ASource, BSource, Transpose};
use lsgd_tensor::threadpool::split_ranges;
use lsgd_tensor::{Matrix, PackedA, PackedB};
use std::cell::RefCell;
use std::ops::Range;

/// Minimum per-call flop count (`2 · filters · patch · ohw · batch`)
/// before the per-sample loop fans out across the worker pool; below it
/// the dispatch overhead exceeds the win.
const CONV_PAR_MIN_FLOPS: usize = 1 << 20;

thread_local! {
    /// Per-thread lowering scratch (`cols`, `dcols`) for the backward
    /// sample loop: tasks run on pool worker threads, so per-thread reuse
    /// makes the steady state allocation-free without sharing across
    /// concurrently processed samples.
    static LOWER_SCRATCH: RefCell<(Matrix, Matrix)> =
        RefCell::new((Matrix::default(), Matrix::default()));
}

/// Convolutional layer: `filters` output channels, `k × k` kernels, valid
/// padding, stride 1, bias per filter.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_c: usize,
    in_h: usize,
    in_w: usize,
    filters: usize,
    k: usize,
}

impl Conv2d {
    /// Creates a conv layer over `in_c × in_h × in_w` inputs.
    ///
    /// # Panics
    /// Panics if the kernel does not fit the input.
    pub fn new(in_c: usize, in_h: usize, in_w: usize, filters: usize, k: usize) -> Self {
        assert!(k > 0 && filters > 0);
        assert!(
            in_h >= k && in_w >= k,
            "kernel {k}x{k} larger than input {in_h}x{in_w}"
        );
        Conv2d {
            in_c,
            in_h,
            in_w,
            filters,
            k,
        }
    }

    /// Output height (valid padding, stride 1).
    #[inline]
    pub fn out_h(&self) -> usize {
        self.in_h - self.k + 1
    }

    /// Output width (valid padding, stride 1).
    #[inline]
    pub fn out_w(&self) -> usize {
        self.in_w - self.k + 1
    }

    /// Output channel count.
    #[inline]
    pub fn out_c(&self) -> usize {
        self.filters
    }

    #[inline]
    fn patch_len(&self) -> usize {
        self.in_c * self.k * self.k
    }

    /// Lowers one sample (flattened NCHW row) into the im2col patch matrix
    /// `(out_h*out_w, in_c*k*k)`.
    ///
    /// Dispatches to a const-kernel-size body for the common sizes: with
    /// `k` known at compile time the `k`-element row copies inline
    /// (a runtime-length 12-byte `copy_from_slice` compiles to a
    /// `memcpy` *call*, which dominated the lowering cost — ~0.5 ms per
    /// CNN minibatch step before this dispatch). Values and order are
    /// identical in every arm.
    fn im2col(&self, sample: &[f32], cols: &mut Matrix) {
        debug_assert_eq!(cols.rows(), self.out_h() * self.out_w());
        debug_assert_eq!(cols.cols(), self.patch_len());
        match self.k {
            1 => self.im2col_k::<1>(sample, cols),
            3 => self.im2col_k::<3>(sample, cols),
            5 => self.im2col_k::<5>(sample, cols),
            _ => self.im2col_k::<0>(sample, cols),
        }
    }

    /// `im2col` body; `K` is the compile-time kernel size (`0` = use the
    /// runtime `self.k`).
    fn im2col_k<const K: usize>(&self, sample: &[f32], cols: &mut Matrix) {
        let (oh, ow) = (self.out_h(), self.out_w());
        let k = if K == 0 { self.k } else { K };
        let hw = self.in_h * self.in_w;
        for oy in 0..oh {
            for ox in 0..ow {
                let dst = cols.row_mut(oy * ow + ox);
                let mut idx = 0;
                for c in 0..self.in_c {
                    let chan = &sample[c * hw..(c + 1) * hw];
                    for ky in 0..k {
                        let src_off = (oy + ky) * self.in_w + ox;
                        dst[idx..idx + k].copy_from_slice(&chan[src_off..src_off + k]);
                        idx += k;
                    }
                }
            }
        }
    }

    /// Fused im2col→panel lowering: fills `dst` with exactly the packed
    /// `B` block that `pack_b(im2col(sample)ᵀ block at (k0, j0))` would
    /// produce — `⌈nc/NR⌉` micro-panels of `NR` output positions, laid
    /// out k-major and zero-padded at the ragged edge — without ever
    /// materialising the im2col matrix.
    ///
    /// Logical operand: `B[k][j] = sample[chan(k), (oy(j)+ky(k)) ·
    /// in_w + ox(j)+kx(k)]` with `j` in output-raster order. For a fixed
    /// patch coordinate `k`, consecutive output positions within one
    /// output row map to *consecutive* input addresses, so each panel row
    /// is assembled from at most `⌈NR/out_w⌉ + 1` contiguous copies.
    fn pack_patches(
        &self,
        sample: &[f32],
        dst: &mut [f32],
        k0: usize,
        j0: usize,
        kc: usize,
        nc: usize,
    ) {
        use lsgd_tensor::gemm::NR;
        let (ow, kk) = (self.out_w(), self.k);
        let hw = self.in_h * self.in_w;
        let panels = nc.div_ceil(NR);
        debug_assert!(dst.len() >= panels * NR * kc);
        for p in 0..panels {
            let jb = j0 + p * NR;
            let cols = NR.min(j0 + nc - jb);
            let panel = &mut dst[p * NR * kc..(p + 1) * NR * kc];
            for (kr, chunk) in panel.chunks_exact_mut(NR).enumerate().take(kc) {
                let pk = k0 + kr;
                let c = pk / (kk * kk);
                let rem = pk % (kk * kk);
                let (ky, kx) = (rem / kk, rem % kk);
                let base = c * hw + ky * self.in_w + kx;
                let (oy0, ox0) = (jb / ow, jb % ow);
                if cols == NR && ox0 + NR <= ow {
                    // Whole panel row inside one output row: a single
                    // const-length copy (the dominant case; a
                    // runtime-length copy here compiles to a memcpy call
                    // and throttles the fused lowering).
                    let src = base + oy0 * self.in_w + ox0;
                    let dst: &mut [f32; NR] = chunk.try_into().unwrap();
                    let s: &[f32; NR] = sample[src..src + NR].try_into().unwrap();
                    *dst = *s;
                    continue;
                }
                // Ragged/wrapping panel row: copy contiguous output-row
                // spans of input values.
                let mut written = 0;
                while written < cols {
                    let j = jb + written;
                    let (oy, ox) = (j / ow, j % ow);
                    let span = (ow - ox).min(cols - written);
                    let src = base + oy * self.in_w + ox;
                    for (d, s) in chunk[written..written + span]
                        .iter_mut()
                        .zip(&sample[src..src + span])
                    {
                        *d = *s;
                    }
                    written += span;
                }
                chunk[cols..].iter_mut().for_each(|v| *v = 0.0);
            }
        }
    }

    /// Scatter-adds a column-gradient matrix `(out_h*out_w, in_c*k*k)` back
    /// into one sample's input gradient (col2im). Const-kernel-size
    /// dispatch for the same reason as [`Conv2d::im2col`].
    fn col2im_add(&self, dcols: &Matrix, dsample: &mut [f32]) {
        match self.k {
            1 => self.col2im_add_k::<1>(dcols, dsample),
            3 => self.col2im_add_k::<3>(dcols, dsample),
            5 => self.col2im_add_k::<5>(dcols, dsample),
            _ => self.col2im_add_k::<0>(dcols, dsample),
        }
    }

    /// `col2im_add` body; `K` as in [`Conv2d::im2col_k`].
    fn col2im_add_k<const K: usize>(&self, dcols: &Matrix, dsample: &mut [f32]) {
        let (oh, ow) = (self.out_h(), self.out_w());
        let k = if K == 0 { self.k } else { K };
        let hw = self.in_h * self.in_w;
        for oy in 0..oh {
            for ox in 0..ow {
                let src = dcols.row(oy * ow + ox);
                let mut idx = 0;
                for c in 0..self.in_c {
                    let chan = &mut dsample[c * hw..(c + 1) * hw];
                    for ky in 0..k {
                        let dst_off = (oy + ky) * self.in_w + ox;
                        for kx in 0..k {
                            chan[dst_off + kx] += src[idx + kx];
                        }
                        idx += k;
                    }
                }
            }
        }
    }

    /// Splits this layer's parameter slice into `(filter weights, bias)`.
    #[inline]
    fn split<'a>(&self, params: &'a [f32]) -> (&'a [f32], &'a [f32]) {
        params.split_at(self.filters * self.patch_len())
    }

    /// Whether a `batch`-sample pass is heavy enough to fan out.
    #[inline]
    fn parallel_worthwhile(&self, batch: usize) -> bool {
        2 * self.filters * self.patch_len() * self.out_h() * self.out_w() * batch
            >= CONV_PAR_MIN_FLOPS
    }

    /// Runs `work` over `0..batch` split into at most `threads` contiguous
    /// ranges — on the runtime when that is more than one range, inline
    /// otherwise. `work` must touch only sample-disjoint state.
    fn for_sample_ranges(
        rt: &lsgd_runtime::Runtime,
        threads: usize,
        batch: usize,
        work: &(dyn Fn(Range<usize>) + Sync),
    ) {
        let ranges = split_ranges(batch, threads);
        if ranges.len() <= 1 {
            work(0..batch);
        } else {
            rt.parallel_for(ranges.len(), &|t| work(ranges[t].clone()));
        }
    }

    /// One sample's forward product + bias: `out_row = W · colsᵀ + b`,
    /// with `colsᵀ` generated in packed layout straight from the sample.
    fn forward_sample(
        &self,
        w: &[f32],
        pa: Option<&PackedA>,
        bias: &[f32],
        sample: &[f32],
        out_row: &mut [f32],
    ) {
        let ohw = self.out_h() * self.out_w();
        let patch = self.patch_len();
        let packer = |dst: &mut [f32], k0: usize, j0: usize, kc: usize, nc: usize| {
            self.pack_patches(sample, dst, k0, j0, kc, nc);
        };
        let bsrc = BSource::Packer {
            pack: &packer,
            shape: (patch, ohw),
        };
        let asrc = match pa {
            Some(pa) => ASource::Prepacked(pa),
            None => ASource::Slices {
                a: w,
                shape: (self.filters, patch),
                trans: Transpose::No,
            },
        };
        gemm_flex(1.0, &asrc, &bsrc, 0.0, out_row, (self.filters, ohw));
        for f in 0..self.filters {
            let b = bias[f];
            for v in &mut out_row[f * ohw..(f + 1) * ohw] {
                *v += b;
            }
        }
    }

    /// One sample's backward work: `dcols = dYᵀ·W` → col2im into the
    /// sample's input-gradient row, and `(dW_s | db_s)` into its slab
    /// entry (`beta = 0` products; the caller reduces slabs in sample
    /// order, which reproduces the serial accumulation bit-for-bit).
    #[allow(clippy::too_many_arguments)]
    fn backward_sample(
        &self,
        w: &[f32],
        pb: Option<&PackedB>,
        dy: &[f32],
        sample: &[f32],
        gi_row: &mut [f32],
        slab_row: &mut [f32],
        cols: &mut Matrix,
        dcols: &mut Matrix,
    ) {
        let ohw = self.out_h() * self.out_w();
        let patch = self.patch_len();
        // dcols = dYᵀ (ohw, filters) · W (filters, patch); fully
        // overwritten (beta = 0), so no zero-fill of the scratch.
        dcols.resize_for_overwrite(ohw, patch);
        let asrc = ASource::Slices {
            a: dy,
            shape: (self.filters, ohw),
            trans: Transpose::Yes,
        };
        match pb {
            Some(pb) => gemm_flex(
                1.0,
                &asrc,
                &BSource::Prepacked(pb),
                0.0,
                dcols.as_mut_slice(),
                (ohw, patch),
            ),
            None => gemm_slices(
                1.0,
                dy,
                (self.filters, ohw),
                Transpose::Yes,
                w,
                (self.filters, patch),
                Transpose::No,
                0.0,
                dcols.as_mut_slice(),
                (ohw, patch),
            ),
        }
        self.col2im_add(dcols, gi_row);

        // dW_s = dY (filters, ohw) · cols (ohw, patch). With the paper
        // CNN's filter counts this sits below gemm's small-m cutoff and
        // streams the materialised cols on the naive path — which is why
        // the lowering is still materialised here (the forward pass is
        // not).
        cols.resize_for_overwrite(ohw, patch);
        self.im2col(sample, cols);
        let (dw_s, db_s) = slab_row.split_at_mut(self.filters * patch);
        gemm_slices(
            1.0,
            dy,
            (self.filters, ohw),
            Transpose::No,
            cols.as_slice(),
            (ohw, patch),
            Transpose::No,
            0.0,
            dw_s,
            (self.filters, patch),
        );
        for f in 0..self.filters {
            db_s[f] = dy[f * ohw..(f + 1) * ohw].iter().sum::<f32>();
        }
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn in_dim(&self) -> usize {
        self.in_c * self.in_h * self.in_w
    }

    fn out_dim(&self) -> usize {
        self.filters * self.out_h() * self.out_w()
    }

    fn param_len(&self) -> usize {
        self.filters * self.patch_len() + self.filters
    }

    fn forward(
        &self,
        params: &[f32],
        input: &Matrix,
        output: &mut Matrix,
        cache: &mut LayerCache,
        ctx: &mut StepCtx,
    ) {
        let batch = input.rows();
        let (w, b) = self.split(params);
        let (oh, ow) = (self.out_h(), self.out_w());
        let ohw = oh * ow;
        let patch = self.patch_len();
        let (panels, use_panels, pool, threads) = ctx.split();
        let par = threads.min(batch) > 1 && self.parallel_worthwhile(batch);

        if !use_panels && !par {
            // Baseline path (benchmark reference): materialised im2col +
            // fresh-pack GEMM, serial. Bitwise identical to the fast path
            // below — the fused packer generates the same panels `pack_b`
            // derives from this matrix.
            if cache.im2col.rows() != ohw || cache.im2col.cols() != patch {
                cache.im2col.resize_zeroed(ohw, patch);
            }
            for s in 0..batch {
                self.im2col(input.row(s), &mut cache.im2col);
                // out_sample (filters, ohw) = W (filters, patch) x colsᵀ
                let out_row = output.row_mut(s);
                gemm_slices(
                    1.0,
                    w,
                    (self.filters, patch),
                    Transpose::No,
                    cache.im2col.as_slice(),
                    (ohw, patch),
                    Transpose::Yes,
                    0.0,
                    out_row,
                    (self.filters, ohw),
                );
                for f in 0..self.filters {
                    let bias = b[f];
                    for v in &mut out_row[f * ohw..(f + 1) * ohw] {
                        *v += bias;
                    }
                }
            }
            return;
        }

        // Fast path: filters prepacked once per step, fused lowering, and
        // (when worthwhile) the sample loop split across the pool.
        let pa = use_panels.then(|| panels.get_a(w, (self.filters, patch), Transpose::No));
        let out = RowsPtr::of(output);
        let work = |range: Range<usize>| {
            for s in range {
                // SAFETY: ranges are disjoint, tasks are joined before
                // `output`'s borrow ends (RowsPtr contract).
                let out_row = unsafe { out.row(s) };
                self.forward_sample(w, pa, b, input.row(s), out_row);
            }
        };
        if par {
            Self::for_sample_ranges(pool, threads, batch, &work);
        } else {
            work(0..batch);
        }
    }

    fn backward(
        &self,
        params: &[f32],
        input: &Matrix,
        _output: &Matrix,
        grad_out: &Matrix,
        cache: &mut LayerCache,
        ctx: &mut StepCtx,
        grad_params: &mut [f32],
        grad_in: &mut Matrix,
    ) {
        let batch = input.rows();
        let (w, _) = self.split(params);
        let patch = self.patch_len();
        let pl = self.param_len();

        grad_in.fill_zero();
        let (panels, use_panels, pool, threads) = ctx.split();
        let par = threads.min(batch) > 1 && self.parallel_worthwhile(batch);

        // Per-sample gradients land in the slab (fully overwritten per
        // sample — no zero-fill) and are reduced in ascending sample
        // order below, which is the serial association exactly.
        cache.grad_slab.resize(batch * pl, 0.0);
        // Prepacked W is only usable where the fresh-operand path would
        // also take the packed kernel (m = out_h·out_w rows in the dcols
        // product); tiny outputs prefer the streaming naive kernel, and
        // matching that policy keeps the paths bitwise identical.
        let use_pb = use_panels
            && !lsgd_tensor::gemm::small_m_prefers_naive(
                self.out_h() * self.out_w(),
                Transpose::No,
            );
        let pb = use_pb.then(|| panels.get_b(w, (self.filters, patch), Transpose::No));
        let gi = RowsPtr::of(grad_in);
        let slab = RowsPtr::of_slab(&mut cache.grad_slab, pl);
        let work = |range: Range<usize>| {
            LOWER_SCRATCH.with(|scratch| {
                let mut scratch = scratch.borrow_mut();
                let (ref mut cols, ref mut dcols) = *scratch;
                for s in range {
                    // SAFETY: disjoint rows per task, joined before the
                    // borrows of `grad_in` / `grad_slab` end.
                    let (gi_row, slab_row) = unsafe { (gi.row(s), slab.row(s)) };
                    self.backward_sample(
                        w,
                        pb,
                        grad_out.row(s),
                        input.row(s),
                        gi_row,
                        slab_row,
                        cols,
                        dcols,
                    );
                }
            });
        };
        if par {
            Self::for_sample_ranges(pool, threads, batch, &work);
        } else {
            work(0..batch);
        }

        // Ordered reduction: grad_params = Σ_s slab[s], s ascending.
        grad_params.iter_mut().for_each(|v| *v = 0.0);
        for s in 0..batch {
            let row = &cache.grad_slab[s * pl..(s + 1) * pl];
            for (g, &r) in grad_params.iter_mut().zip(row) {
                *g += r;
            }
        }
    }

    fn describe(&self) -> String {
        format!(
            "Conv2d {}x{}x{} -> {}x{}x{} (k={})",
            self.in_c,
            self.in_h,
            self.in_w,
            self.filters,
            self.out_h(),
            self.out_w(),
            self.k
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct (non-im2col) reference convolution for one sample.
    fn conv_ref(l: &Conv2d, params: &[f32], sample: &[f32]) -> Vec<f32> {
        let (w, b) = l.split(params);
        let (oh, ow, k) = (l.out_h(), l.out_w(), l.k);
        let hw = l.in_h * l.in_w;
        let mut out = vec![0.0f32; l.filters * oh * ow];
        for f in 0..l.filters {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = b[f];
                    for c in 0..l.in_c {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iv = sample[c * hw + (oy + ky) * l.in_w + (ox + kx)];
                                let wv = w[f * l.patch_len() + c * k * k + ky * k + kx];
                                acc += iv * wv;
                            }
                        }
                    }
                    out[f * oh * ow + oy * ow + ox] = acc;
                }
            }
        }
        out
    }

    #[test]
    fn table_iii_parameter_counts() {
        // Conv1: 4 filters, 3x3, 1 channel → 4*9 + 4 = 40 params.
        let c1 = Conv2d::new(1, 28, 28, 4, 3);
        assert_eq!(c1.param_len(), 40);
        assert_eq!(c1.out_dim(), 4 * 26 * 26);
        // Conv2: 8 filters, 3x3 over 4 channels of 13x13 → 8*36 + 8 = 296.
        let c2 = Conv2d::new(4, 13, 13, 8, 3);
        assert_eq!(c2.param_len(), 296);
        assert_eq!(c2.out_dim(), 8 * 11 * 11);
    }

    #[test]
    fn forward_matches_direct_convolution() {
        let l = Conv2d::new(2, 6, 5, 3, 3);
        let mut rng = lsgd_tensor::SmallRng64::new(42);
        let params: Vec<f32> = (0..l.param_len()).map(|_| rng.next_f32() - 0.5).collect();
        let x = Matrix::from_fn(2, l.in_dim(), |_, _| rng.next_f32() - 0.5);
        let mut y = Matrix::zeros(2, l.out_dim());
        l.forward(
            &params,
            &x,
            &mut y,
            &mut LayerCache::default(),
            &mut StepCtx::default(),
        );
        for s in 0..2 {
            let want = conv_ref(&l, &params, x.row(s));
            for (a, b) in y.row(s).iter().zip(&want) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn fused_packer_matches_materialized_im2col_panels() {
        use lsgd_tensor::gemm::NR;
        use lsgd_tensor::pack::pack_b;
        // Irregular geometry: 2 channels, non-square input, ow < NR so
        // panel rows straddle output-row boundaries.
        let l = Conv2d::new(2, 7, 6, 3, 3);
        let mut rng = lsgd_tensor::SmallRng64::new(9);
        let sample: Vec<f32> = (0..l.in_dim()).map(|_| rng.next_f32() - 0.5).collect();
        let (ohw, patch) = (l.out_h() * l.out_w(), l.patch_len());
        let mut cols = Matrix::zeros(ohw, patch);
        l.im2col(&sample, &mut cols);
        for (k0, j0, kc, nc) in [
            (0, 0, patch, ohw),
            (1, 0, patch - 1, ohw),
            (0, NR, 3, ohw - NR),
            (2, NR + 1, patch - 2, 5),
        ] {
            let len = nc.div_ceil(NR) * NR * kc;
            let mut want = vec![f32::NAN; len];
            pack_b(&mut want, cols.as_slice(), patch, true, k0, j0, kc, nc);
            let mut got = vec![f32::NAN; len];
            l.pack_patches(&sample, &mut got, k0, j0, kc, nc);
            assert_eq!(got, want, "block k0={k0} j0={j0} kc={kc} nc={nc}");
        }
    }

    #[test]
    fn fast_and_baseline_paths_agree_bitwise() {
        let l = Conv2d::new(2, 9, 8, 4, 3);
        let batch = 5;
        let mut rng = lsgd_tensor::SmallRng64::new(11);
        let params: Vec<f32> = (0..l.param_len()).map(|_| rng.next_f32() - 0.5).collect();
        let x = Matrix::from_fn(batch, l.in_dim(), |_, _| rng.next_f32() - 0.5);
        let dy = Matrix::from_fn(batch, l.out_dim(), |_, _| rng.next_f32() - 0.5);

        let mut baseline_ctx = StepCtx {
            use_panels: false,
            threads: 1,
            ..StepCtx::default()
        };
        let mut fast_ctx = StepCtx::default();
        fast_ctx.panels.begin_step();

        let mut y_base = Matrix::zeros(batch, l.out_dim());
        let mut y_fast = Matrix::zeros(batch, l.out_dim());
        l.forward(&params, &x, &mut y_base, &mut LayerCache::default(), &mut baseline_ctx);
        l.forward(&params, &x, &mut y_fast, &mut LayerCache::default(), &mut fast_ctx);
        assert!(
            y_base
                .as_slice()
                .iter()
                .zip(y_fast.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "fused forward diverged from baseline"
        );

        let mut dp_base = vec![0.0f32; l.param_len()];
        let mut dp_fast = vec![0.0f32; l.param_len()];
        let mut dx_base = Matrix::zeros(batch, l.in_dim());
        let mut dx_fast = Matrix::zeros(batch, l.in_dim());
        l.backward(
            &params, &x, &y_base, &dy, &mut LayerCache::default(), &mut baseline_ctx,
            &mut dp_base, &mut dx_base,
        );
        l.backward(
            &params, &x, &y_fast, &dy, &mut LayerCache::default(), &mut fast_ctx,
            &mut dp_fast, &mut dx_fast,
        );
        assert!(
            dp_base.iter().zip(&dp_fast).all(|(a, b)| a.to_bits() == b.to_bits()),
            "param gradient diverged"
        );
        assert!(
            dx_base
                .as_slice()
                .iter()
                .zip(dx_fast.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "input gradient diverged"
        );
    }

    #[test]
    fn identity_kernel_recovers_input_patch() {
        // Single 1x1 filter with weight 1, bias 0 → output == input.
        let l = Conv2d::new(1, 4, 4, 1, 1);
        let params = vec![1.0, 0.0];
        let x = Matrix::from_fn(1, 16, |_, c| c as f32);
        let mut y = Matrix::zeros(1, 16);
        l.forward(
            &params,
            &x,
            &mut y,
            &mut LayerCache::default(),
            &mut StepCtx::default(),
        );
        assert_eq!(x.as_slice(), y.as_slice());
    }

    #[test]
    fn bias_only_network_outputs_bias() {
        let l = Conv2d::new(1, 5, 5, 2, 3);
        let mut params = vec![0.0f32; l.param_len()];
        params[l.filters * l.patch_len()] = 1.5; // bias of filter 0
        params[l.filters * l.patch_len() + 1] = -2.5; // bias of filter 1
        let x = Matrix::zeros(1, 25);
        let mut y = Matrix::zeros(1, l.out_dim());
        l.forward(
            &params,
            &x,
            &mut y,
            &mut LayerCache::default(),
            &mut StepCtx::default(),
        );
        let ohw = 9;
        assert!(y.row(0)[..ohw].iter().all(|&v| v == 1.5));
        assert!(y.row(0)[ohw..].iter().all(|&v| v == -2.5));
    }

    #[test]
    fn backward_bias_gradient_sums_spatial_positions() {
        let l = Conv2d::new(1, 4, 4, 1, 3);
        let params = vec![0.0f32; l.param_len()];
        let x = Matrix::zeros(1, 16);
        let y = Matrix::zeros(1, 4);
        let dy = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let mut dp = vec![0.0f32; l.param_len()];
        let mut dx = Matrix::zeros(1, 16);
        l.backward(
            &params,
            &x,
            &y,
            &dy,
            &mut LayerCache::default(),
            &mut StepCtx::default(),
            &mut dp,
            &mut dx,
        );
        assert_eq!(dp[l.param_len() - 1], 10.0);
    }
}
