//! Max-pooling layer.
//!
//! The paper's CNN (Table III) uses 2×2 MaxPool layers after each
//! convolution. Pooling uses non-overlapping windows (stride = window) and
//! floor semantics for odd inputs — with 28×28 MNIST inputs this yields the
//! 26→13 and 11→5 reductions that reproduce the published `d = 27,354`.

use crate::layer::{Layer, LayerCache, StepCtx};
use lsgd_tensor::Matrix;
use rand::rngs::StdRng;

/// Non-overlapping max-pool over `win × win` windows, per channel.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    channels: usize,
    in_h: usize,
    in_w: usize,
    win: usize,
}

impl MaxPool2d {
    /// Creates a pooling layer over `channels × in_h × in_w` feature maps.
    ///
    /// # Panics
    /// Panics if the window is zero or larger than the input.
    pub fn new(channels: usize, in_h: usize, in_w: usize, win: usize) -> Self {
        assert!(win > 0, "pool window must be positive");
        assert!(in_h >= win && in_w >= win, "pool window larger than input");
        MaxPool2d {
            channels,
            in_h,
            in_w,
            win,
        }
    }

    /// Pooled height (floor semantics — trailing rows that do not fill a
    /// window are dropped, matching MiniDNN).
    #[inline]
    pub fn out_h(&self) -> usize {
        self.in_h / self.win
    }

    /// Pooled width.
    #[inline]
    pub fn out_w(&self) -> usize {
        self.in_w / self.win
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "MaxPool2d"
    }

    fn in_dim(&self) -> usize {
        self.channels * self.in_h * self.in_w
    }

    fn out_dim(&self) -> usize {
        self.channels * self.out_h() * self.out_w()
    }

    fn param_len(&self) -> usize {
        0
    }

    fn init_params(&self, _params: &mut [f32], _rng: &mut StdRng) {}

    fn forward(
        &self,
        _params: &[f32],
        input: &Matrix,
        output: &mut Matrix,
        cache: &mut LayerCache,
        _ctx: &mut StepCtx,
    ) {
        let batch = input.rows();
        let (oh, ow, win) = (self.out_h(), self.out_w(), self.win);
        let hw = self.in_h * self.in_w;
        let ohw = oh * ow;
        cache.argmax.clear();
        cache.argmax.resize(batch * self.channels * ohw, 0);
        for s in 0..batch {
            let src = input.row(s);
            let dst = output.row_mut(s);
            for c in 0..self.channels {
                let chan = &src[c * hw..(c + 1) * hw];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0u32;
                        for wy in 0..win {
                            let base = (oy * win + wy) * self.in_w + ox * win;
                            for wx in 0..win {
                                let v = chan[base + wx];
                                if v > best {
                                    best = v;
                                    best_idx = (base + wx) as u32;
                                }
                            }
                        }
                        dst[c * ohw + oy * ow + ox] = best;
                        cache.argmax[(s * self.channels + c) * ohw + oy * ow + ox] = best_idx;
                    }
                }
            }
        }
    }

    fn backward(
        &self,
        _params: &[f32],
        _input: &Matrix,
        _output: &Matrix,
        grad_out: &Matrix,
        cache: &mut LayerCache,
        _ctx: &mut StepCtx,
        _grad_params: &mut [f32],
        grad_in: &mut Matrix,
    ) {
        let batch = grad_out.rows();
        let (oh, ow) = (self.out_h(), self.out_w());
        let hw = self.in_h * self.in_w;
        let ohw = oh * ow;
        grad_in.fill_zero();
        for s in 0..batch {
            let go = grad_out.row(s);
            let gi = grad_in.row_mut(s);
            for c in 0..self.channels {
                for p in 0..ohw {
                    let g = go[c * ohw + p];
                    let idx = cache.argmax[(s * self.channels + c) * ohw + p] as usize;
                    gi[c * hw + idx] += g;
                }
            }
        }
    }

    fn describe(&self) -> String {
        format!(
            "MaxPool2d {}x{}x{} -> {}x{}x{} (win={})",
            self.channels,
            self.in_h,
            self.in_w,
            self.channels,
            self.out_h(),
            self.out_w(),
            self.win
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_shape_reductions() {
        // 26x26 → 13x13, then 11x11 → 5x5 with floor semantics.
        let p1 = MaxPool2d::new(4, 26, 26, 2);
        assert_eq!((p1.out_h(), p1.out_w()), (13, 13));
        let p2 = MaxPool2d::new(8, 11, 11, 2);
        assert_eq!((p2.out_h(), p2.out_w()), (5, 5));
        assert_eq!(p2.out_dim(), 8 * 25);
    }

    #[test]
    fn forward_picks_window_maxima() {
        let l = MaxPool2d::new(1, 4, 4, 2);
        #[rustfmt::skip]
        let x = Matrix::from_vec(1, 16, vec![
            1.0, 2.0,  3.0, 4.0,
            5.0, 6.0,  7.0, 8.0,
            9.0, 1.0,  1.0, 1.0,
            1.0, 1.0,  1.0, 2.0,
        ]);
        let mut y = Matrix::zeros(1, 4);
        let mut cache = LayerCache::default();
        l.forward(&[], &x, &mut y, &mut cache, &mut StepCtx::default());
        assert_eq!(y.as_slice(), &[6.0, 8.0, 9.0, 2.0]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let l = MaxPool2d::new(1, 2, 2, 2);
        let x = Matrix::from_vec(1, 4, vec![1.0, 9.0, 3.0, 2.0]);
        let mut y = Matrix::zeros(1, 1);
        let mut cache = LayerCache::default();
        l.forward(&[], &x, &mut y, &mut cache, &mut StepCtx::default());
        assert_eq!(y.as_slice(), &[9.0]);
        let dy = Matrix::from_vec(1, 1, vec![7.0]);
        let mut dx = Matrix::zeros(1, 4);
        l.backward(&[], &x, &y, &dy, &mut cache, &mut StepCtx::default(), &mut [], &mut dx);
        assert_eq!(dx.as_slice(), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn odd_input_drops_trailing_row_col() {
        let l = MaxPool2d::new(1, 3, 3, 2);
        assert_eq!((l.out_h(), l.out_w()), (1, 1));
        // Max must come from the top-left 2x2 window only.
        let x = Matrix::from_vec(1, 9, vec![1.0, 2.0, 99.0, 3.0, 4.0, 99.0, 99.0, 99.0, 99.0]);
        let mut y = Matrix::zeros(1, 1);
        l.forward(&[], &x, &mut y, &mut LayerCache::default(), &mut StepCtx::default());
        assert_eq!(y.as_slice(), &[4.0]);
    }

    #[test]
    fn multichannel_pools_independently() {
        let l = MaxPool2d::new(2, 2, 2, 2);
        let x = Matrix::from_vec(1, 8, vec![1.0, 2.0, 3.0, 4.0, -1.0, -2.0, -3.0, -4.0]);
        let mut y = Matrix::zeros(1, 2);
        l.forward(&[], &x, &mut y, &mut LayerCache::default(), &mut StepCtx::default());
        assert_eq!(y.as_slice(), &[4.0, -1.0]);
    }

    #[test]
    fn ties_resolve_to_first_element() {
        let l = MaxPool2d::new(1, 2, 2, 2);
        let x = Matrix::from_vec(1, 4, vec![5.0, 5.0, 5.0, 5.0]);
        let mut y = Matrix::zeros(1, 1);
        let mut cache = LayerCache::default();
        l.forward(&[], &x, &mut y, &mut cache, &mut StepCtx::default());
        assert_eq!(cache.argmax[0], 0);
    }
}
