//! Finite-difference gradient checking.
//!
//! Backpropagation bugs are the classic silent failure of hand-rolled DL
//! substrates: training still *decreases* the loss while quietly following
//! a wrong direction, corrupting every downstream conclusion about
//! convergence rate. This module compares analytic gradients against
//! central finite differences and is exercised over every layer type by
//! the test-suite.
//!
//! Two FD artifacts are unavoidable in f32 and are handled explicitly:
//! coordinates whose true gradient is below the FD noise floor (the
//! relative-error denominator has a floor), and coordinates where the
//! `±ε` probe straddles a ReLU kink (a handful of isolated outliers even
//! for a correct gradient — hence the quantile-based acceptance in
//! [`GradCheckReport::assert_ok`]).

use crate::network::Network;
use lsgd_tensor::Matrix;

/// Result of a gradient check: per-coordinate relative errors.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Relative error per checked coordinate, `|a - n| / max(0.01, |a|+|n|)`.
    pub rel_errs: Vec<f32>,
    /// Parameter index of the worst coordinate.
    pub worst_index: usize,
}

impl GradCheckReport {
    /// Maximum relative error over the checked coordinates.
    pub fn max_rel_err(&self) -> f32 {
        self.rel_errs.iter().cloned().fold(0.0, f32::max)
    }

    /// The `q`-quantile (0..=1) of the relative errors.
    pub fn quantile(&self, q: f32) -> f32 {
        let mut sorted = self.rel_errs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((sorted.len() - 1) as f32 * q).round() as usize;
        sorted[idx]
    }

    /// Panics unless (a) the 95th-percentile relative error is below
    /// `tight` and (b) the maximum is below `max_allowed` (guarding
    /// against the rare legitimate ReLU-kink outlier while still catching
    /// systematically wrong gradients).
    pub fn assert_ok(&self, tight: f32, max_allowed: f32) {
        let q95 = self.quantile(0.95);
        let max = self.max_rel_err();
        assert!(
            q95 < tight && max < max_allowed,
            "gradient check failed: q95 = {q95}, max = {max} (worst index {}), \
             thresholds tight={tight} max={max_allowed}",
            self.worst_index
        );
    }
}

/// Compares `Network::loss_grad` with central finite differences on
/// `n_checks` evenly spaced parameter coordinates.
pub fn check_network_gradient(
    net: &Network,
    theta: &[f32],
    x: &Matrix,
    y: &[u8],
    n_checks: usize,
    epsilon: f32,
) -> GradCheckReport {
    let d = net.param_len();
    assert_eq!(theta.len(), d);
    let mut ws = net.workspace(x.rows());
    let mut analytic = vec![0.0f32; d];
    net.loss_grad(theta, x, y, &mut analytic, &mut ws);

    let step = (d / n_checks.max(1)).max(1);
    let mut perturbed = theta.to_vec();
    let mut rel_errs = Vec::new();
    let mut worst_index = 0usize;
    let mut worst = 0.0f32;
    for i in (0..d).step_by(step) {
        let mut fd = |eps: f32, buf: &mut Vec<f32>| {
            let orig = buf[i];
            buf[i] = orig + eps;
            let up = net.loss(buf, x, y, &mut ws);
            buf[i] = orig - eps;
            let down = net.loss(buf, x, y, &mut ws);
            buf[i] = orig;
            (up - down) / (2.0 * eps)
        };
        let a = analytic[i];
        let rel_at = |numeric: f32| (a - numeric).abs() / (a.abs() + numeric.abs()).max(1e-2);
        let mut rel = rel_at(fd(epsilon, &mut perturbed));
        // An isolated large error can be an FD artifact (the ±ε probe
        // straddling a ReLU/max-pool kink) rather than a gradient bug. The
        // two are separable: a wrong analytic gradient disagrees with the
        // FD estimate at *every* ε, while a kink artifact disappears once
        // the probe no longer crosses the kink. Refine suspicious
        // coordinates with shrinking ε and keep their best estimate.
        if rel > 1e-2 {
            for shrink in [8.0, 64.0] {
                rel = rel.min(rel_at(fd(epsilon / shrink, &mut perturbed)));
                if rel <= 1e-2 {
                    break;
                }
            }
        }
        if rel > worst {
            worst = rel;
            worst_index = i;
        }
        rel_errs.push(rel);
    }
    GradCheckReport {
        rel_errs,
        worst_index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::conv::Conv2d;
    use crate::dense::Dense;
    use crate::layer::Layer;
    use crate::network::Network;
    use crate::pool::MaxPool2d;
    use lsgd_tensor::SmallRng64;

    fn rand_batch(n: usize, dim: usize, classes: usize, seed: u64) -> (Matrix, Vec<u8>) {
        let mut rng = SmallRng64::new(seed);
        let x = Matrix::from_fn(n, dim, |_, _| rng.next_f32() - 0.5);
        let y = (0..n).map(|_| rng.next_below(classes) as u8).collect();
        (x, y)
    }

    /// Init with larger weights (`N(0, 0.01 * scale)` instead of the
    /// paper's `N(0, 0.01)`) so the true gradients sit far above the f32
    /// finite-difference noise floor. Deeper stacks need a smaller scale to
    /// avoid softmax saturation, which flattens the loss beyond f32
    /// resolution and breaks central differences.
    fn init(net: &Network, seed: u64, scale: f32) -> Vec<f32> {
        let mut theta = net.init_params(seed);
        for v in &mut theta {
            *v *= scale;
        }
        theta
    }

    #[test]
    fn dense_network_gradient_is_correct() {
        let net = Network::new(vec![
            Box::new(Dense::new(6, 10)),
            Box::new(Relu::new(10)),
            Box::new(Dense::new(10, 4)),
        ]);
        let theta = init(&net, 1, 50.0);
        let (x, y) = rand_batch(5, 6, 4, 2);
        check_network_gradient(&net, &theta, &x, &y, 120, 1e-2).assert_ok(2e-2, 0.2);
    }

    #[test]
    fn conv_network_gradient_is_correct() {
        let c = Conv2d::new(1, 6, 6, 3, 3);
        let c_out = c.out_dim();
        let net = Network::new(vec![
            Box::new(c),
            Box::new(Relu::new(c_out)),
            Box::new(Dense::new(c_out, 3)),
        ]);
        let theta = init(&net, 3, 50.0);
        let (x, y) = rand_batch(4, 36, 3, 4);
        check_network_gradient(&net, &theta, &x, &y, 150, 1e-2).assert_ok(2e-2, 0.2);
    }

    #[test]
    fn pool_network_gradient_is_correct() {
        let c = Conv2d::new(1, 8, 8, 2, 3); // -> 2x6x6
        let p = MaxPool2d::new(2, 6, 6, 2); // -> 2x3x3
        let p_out = p.out_dim();
        let c_out = c.out_dim();
        let net = Network::new(vec![
            Box::new(c),
            Box::new(Relu::new(c_out)),
            Box::new(p),
            Box::new(Dense::new(p_out, 3)),
        ]);
        let theta = init(&net, 5, 50.0);
        let (x, y) = rand_batch(3, 64, 3, 6);
        check_network_gradient(&net, &theta, &x, &y, 150, 1e-2).assert_ok(3e-2, 0.2);
    }

    #[test]
    fn deep_mlp_gradient_is_correct() {
        let net = Network::new(vec![
            Box::new(Dense::new(5, 12)),
            Box::new(Relu::new(12)),
            Box::new(Dense::new(12, 12)),
            Box::new(Relu::new(12)),
            Box::new(Dense::new(12, 12)),
            Box::new(Relu::new(12)),
            Box::new(Dense::new(12, 3)),
        ]);
        let theta = init(&net, 7, 15.0);
        let (x, y) = rand_batch(6, 5, 3, 8);
        check_network_gradient(&net, &theta, &x, &y, 200, 1e-2).assert_ok(3e-2, 0.2);
    }

    #[test]
    fn quantile_helper_is_monotone() {
        let rep = GradCheckReport {
            rel_errs: vec![0.5, 0.1, 0.3, 0.2, 0.4],
            worst_index: 0,
        };
        assert!(rep.quantile(0.0) <= rep.quantile(0.5));
        assert!(rep.quantile(0.5) <= rep.quantile(1.0));
        assert_eq!(rep.quantile(1.0), rep.max_rel_err());
    }
}
