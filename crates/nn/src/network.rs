//! Sequential network container over a flat parameter vector.
//!
//! [`Network`] is the concrete realisation of what the paper calls
//! "extracting all learnable parameters into a collective data structure":
//! the network holds only architecture (layers and their parameter
//! offsets); parameters arrive as a flat `&[f32]` — in the parallel
//! algorithms, directly the contents of a published ParameterVector — and
//! the minibatch gradient leaves as a flat `&mut [f32]`.
//!
//! [`Workspace`] carries all per-thread scratch (activations, gradient
//! ping-pong buffers, layer caches) so `m` concurrent workers share the
//! immutable `Network` and nothing else.

use crate::layer::{Layer, LayerCache, StepCtx};
use crate::loss;
use lsgd_runtime::Handle;
use lsgd_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Compute-path configuration for a [`Workspace`].
///
/// The default is the fast path: per-step prepacked weight panels and as
/// much intra-step parallelism as the worker pool provides.
/// [`ComputeOpts::baseline`] reproduces the pre-optimisation behaviour
/// (fresh packing per GEMM, fully serial layers) and is kept as the
/// benchmark reference; both paths produce bitwise-identical gradients.
#[derive(Clone)]
pub struct ComputeOpts {
    /// Cache packed weight panels across the GEMMs of one SGD step.
    pub panel_cache: bool,
    /// Upper bound on intra-step worker threads (`usize::MAX` = runtime
    /// size, `1` = serial).
    pub threads: usize,
    /// Which runtime executes intra-step splits (default: the
    /// process-global one, sized by `LSGD_THREADS`).
    pub runtime: Handle,
}

impl Default for ComputeOpts {
    fn default() -> Self {
        ComputeOpts {
            panel_cache: true,
            threads: usize::MAX,
            runtime: Handle::Global,
        }
    }
}

impl ComputeOpts {
    /// The pre-optimisation reference path: no panel reuse, no intra-step
    /// threading.
    pub fn baseline() -> Self {
        ComputeOpts {
            panel_cache: false,
            threads: 1,
            runtime: Handle::Global,
        }
    }
}

/// An immutable sequence of layers with precomputed parameter offsets.
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
    offsets: Vec<usize>,
    d: usize,
    n_classes: usize,
}

impl Network {
    /// Builds a network from a layer stack.
    ///
    /// # Panics
    /// Panics if consecutive layer dimensions do not match or the stack is
    /// empty.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        assert!(!layers.is_empty(), "network needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].out_dim(),
                pair[1].in_dim(),
                "layer dimension mismatch: {} out={} vs {} in={}",
                pair[0].describe(),
                pair[0].out_dim(),
                pair[1].describe(),
                pair[1].in_dim()
            );
        }
        let mut offsets = Vec::with_capacity(layers.len() + 1);
        let mut acc = 0usize;
        for l in &layers {
            offsets.push(acc);
            acc += l.param_len();
        }
        offsets.push(acc);
        let n_classes = layers.last().unwrap().out_dim();
        Network {
            layers,
            offsets,
            d: acc,
            n_classes,
        }
    }

    /// Total number of learnable parameters `d` (the dimension of the
    /// ParameterVector).
    #[inline]
    pub fn param_len(&self) -> usize {
        self.d
    }

    /// Flattened input dimension per sample.
    #[inline]
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimension (= number of classes for classification).
    #[inline]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of layers.
    #[inline]
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// The parameter slice belonging to layer `i` within a flat vector.
    pub fn layer_params<'a>(&self, i: usize, theta: &'a [f32]) -> &'a [f32] {
        &theta[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Samples a fresh parameter vector, `N(0, 0.01)` per the paper's
    /// `rand_init`, deterministic under `seed`.
    pub fn init_params(&self, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut theta = vec![0.0f32; self.d];
        for (i, l) in self.layers.iter().enumerate() {
            l.init_params(&mut theta[self.offsets[i]..self.offsets[i + 1]], &mut rng);
        }
        theta
    }

    /// Creates the per-thread scratch for minibatches of at most
    /// `max_batch` samples.
    pub fn workspace(&self, max_batch: usize) -> Workspace {
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        activations.push(Matrix::zeros(max_batch, self.in_dim()));
        for l in &self.layers {
            activations.push(Matrix::zeros(max_batch, l.out_dim()));
        }
        let widest = self
            .layers
            .iter()
            .map(|l| l.in_dim().max(l.out_dim()))
            .max()
            .unwrap();
        Workspace {
            activations,
            grad_a: Matrix::zeros(max_batch, widest),
            grad_b: Matrix::zeros(max_batch, widest),
            caches: self.layers.iter().map(|_| LayerCache::default()).collect(),
            ctx: StepCtx::default(),
            max_batch,
        }
    }

    /// Forward pass: fills `ws` with activations, returns the logits (the
    /// last activation) for `x` `(batch, in_dim)`.
    ///
    /// # Panics
    /// Panics if `theta.len() != d`, the batch exceeds the workspace
    /// capacity, or `x` has the wrong width.
    pub fn forward<'w>(&self, theta: &[f32], x: &Matrix, ws: &'w mut Workspace) -> &'w Matrix {
        self.forward_fill(theta, x, ws);
        ws.activations.last().unwrap()
    }

    /// Forward pass that only populates the workspace (no borrow of the
    /// result), letting callers split field borrows afterwards.
    ///
    /// Starts a new panel-cache step: `theta` is treated as one parameter
    /// version for this forward pass and any backward pass that follows
    /// before the next `forward_fill`.
    fn forward_fill(&self, theta: &[f32], x: &Matrix, ws: &mut Workspace) {
        assert_eq!(theta.len(), self.d, "parameter vector length");
        assert!(x.rows() <= ws.max_batch, "batch exceeds workspace");
        assert_eq!(x.cols(), self.in_dim(), "input width");
        let batch = x.rows();
        let Workspace {
            activations,
            caches,
            ctx,
            ..
        } = ws;
        ctx.panels.begin_step();
        // Every buffer below is fully overwritten by its producer (the
        // Layer::forward contract), so plain reshapes suffice — no
        // per-step zero-fill.
        activations[0].resize_for_overwrite(batch, self.in_dim());
        activations[0].as_mut_slice().copy_from_slice(x.as_slice());
        for (i, l) in self.layers.iter().enumerate() {
            let (before, after) = activations.split_at_mut(i + 1);
            let input = &before[i];
            let output = &mut after[0];
            output.resize_for_overwrite(batch, l.out_dim());
            l.forward(self.layer_params(i, theta), input, output, &mut caches[i], ctx);
        }
    }

    /// Mean loss of a labelled minibatch under parameters `theta`.
    pub fn loss(&self, theta: &[f32], x: &Matrix, y: &[u8], ws: &mut Workspace) -> f32 {
        let logits = self.forward(theta, x, ws);
        loss::cross_entropy_loss(logits, y)
    }

    /// Classification accuracy of a labelled minibatch.
    pub fn accuracy(&self, theta: &[f32], x: &Matrix, y: &[u8], ws: &mut Workspace) -> f32 {
        let logits = self.forward(theta, x, ws);
        loss::accuracy(logits, y)
    }

    /// Computes the minibatch loss and writes the full flat gradient into
    /// `grad` — the `comp_grad` of the paper's Algorithms 2–4.
    ///
    /// # Panics
    /// Panics if `grad.len() != d` or on input shape mismatches.
    pub fn loss_grad(
        &self,
        theta: &[f32],
        x: &Matrix,
        y: &[u8],
        grad: &mut [f32],
        ws: &mut Workspace,
    ) -> f32 {
        assert_eq!(grad.len(), self.d, "gradient buffer length");
        let batch = x.rows();
        self.forward_fill(theta, x, ws);
        let Workspace {
            activations,
            grad_a,
            grad_b,
            caches,
            ctx,
            ..
        } = ws;
        // Disjoint field borrows: logits live in `activations`, the logit
        // gradient goes into `grad_a`. The loss gradient (like every
        // layer's backward) writes all of its output, so the gradient
        // ping-pong buffers are reshaped without zero-filling.
        grad_a.resize_for_overwrite(batch, self.n_classes);
        let logits = activations.last().unwrap();
        let loss_val = loss::cross_entropy_loss_grad(logits, y, grad_a);
        // Backward sweep, ping-ponging grad_a (d output) and grad_b (d input).
        for i in (0..self.layers.len()).rev() {
            let l = &self.layers[i];
            grad_b.resize_for_overwrite(batch, l.in_dim());
            let input = &activations[i];
            let output = &activations[i + 1];
            l.backward(
                self.layer_params(i, theta),
                input,
                output,
                grad_a,
                &mut caches[i],
                ctx,
                &mut grad[self.offsets[i]..self.offsets[i + 1]],
                grad_b,
            );
            std::mem::swap(grad_a, grad_b);
        }
        loss_val
    }

    /// Multi-line architecture summary (à la Tables II/III of the paper).
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for (i, l) in self.layers.iter().enumerate() {
            out.push_str(&format!(
                "{:>2}  {:<40} params={}\n",
                i + 1,
                l.describe(),
                l.param_len()
            ));
        }
        out.push_str(&format!("    total d = {}\n", self.d));
        out
    }
}

/// Per-thread scratch: activation stack, gradient ping-pong buffers,
/// layer caches, and the per-step compute context (prepacked panel
/// cache plus parallelism policy). Create one per worker
/// via [`Network::workspace`].
pub struct Workspace {
    activations: Vec<Matrix>,
    grad_a: Matrix,
    grad_b: Matrix,
    caches: Vec<LayerCache>,
    ctx: StepCtx,
    max_batch: usize,
}

impl Workspace {
    /// The activation matrix produced by layer `i` during the last forward
    /// pass (`i = 0` is the input copy). Exposed for tests/diagnostics.
    pub fn activation(&self, i: usize) -> &Matrix {
        &self.activations[i]
    }

    /// Reconfigures the compute path (panel caching / intra-step
    /// threading) for all subsequent passes through this workspace.
    pub fn set_compute_opts(&mut self, opts: ComputeOpts) {
        self.ctx.use_panels = opts.panel_cache;
        self.ctx.threads = opts.threads;
        self.ctx.runtime = opts.runtime;
    }

    /// The step context (tests/diagnostics — e.g. panel-cache hit rates).
    pub fn step_ctx(&self) -> &StepCtx {
        &self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::dense::Dense;

    fn two_layer() -> Network {
        Network::new(vec![
            Box::new(Dense::new(4, 8)),
            Box::new(Relu::new(8)),
            Box::new(Dense::new(8, 3)),
        ])
    }

    #[test]
    fn offsets_partition_the_vector() {
        let net = two_layer();
        assert_eq!(net.param_len(), (4 * 8 + 8) + (8 * 3 + 3));
        assert_eq!(net.layer_params(0, &vec![0.0; net.param_len()]).len(), 40);
        assert_eq!(net.layer_params(1, &vec![0.0; net.param_len()]).len(), 0);
        assert_eq!(net.layer_params(2, &vec![0.0; net.param_len()]).len(), 27);
    }

    #[test]
    #[should_panic]
    fn mismatched_layers_rejected() {
        Network::new(vec![
            Box::new(Dense::new(4, 8)),
            Box::new(Dense::new(9, 3)),
        ]);
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let net = two_layer();
        assert_eq!(net.init_params(5), net.init_params(5));
        assert_ne!(net.init_params(5), net.init_params(6));
    }

    #[test]
    fn forward_shapes() {
        let net = two_layer();
        let theta = net.init_params(0);
        let mut ws = net.workspace(16);
        let x = Matrix::zeros(7, 4);
        let logits = net.forward(&theta, &x, &mut ws);
        assert_eq!((logits.rows(), logits.cols()), (7, 3));
    }

    #[test]
    fn initial_loss_is_log_k() {
        // With N(0, 0.01) weights the logits are near zero → loss ≈ ln(3).
        let net = two_layer();
        let theta = net.init_params(1);
        let mut ws = net.workspace(8);
        let x = Matrix::from_fn(8, 4, |r, c| ((r + c) % 3) as f32 * 0.1);
        let y = [0u8, 1, 2, 0, 1, 2, 0, 1];
        let loss = net.loss(&theta, &x, &y, &mut ws);
        assert!((loss - 3f32.ln()).abs() < 0.05, "loss {loss}");
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        let net = two_layer();
        // N(0, 0.3) init: the paper's N(0, 0.01) is so close to the origin
        // that a test-sized problem barely moves in a few hundred steps.
        let mut theta = net.init_params(2);
        theta.iter_mut().for_each(|v| *v *= 30.0);
        let mut ws = net.workspace(8);
        let mut rng = lsgd_tensor::SmallRng64::new(3);
        let x = Matrix::from_fn(8, 4, |_, _| rng.next_f32() - 0.5);
        let y = [0u8, 1, 2, 0, 1, 2, 0, 1];
        let mut grad = vec![0.0f32; net.param_len()];
        let initial = net.loss(&theta, &x, &y, &mut ws);
        for _ in 0..300 {
            net.loss_grad(&theta, &x, &y, &mut grad, &mut ws);
            lsgd_tensor::ops::sgd_step(&mut theta, &grad, 1.0);
        }
        let fin = net.loss(&theta, &x, &y, &mut ws);
        assert!(
            fin < initial * 0.5,
            "training should reduce loss: {initial} -> {fin}"
        );
    }

    #[test]
    fn loss_grad_returns_same_loss_as_loss() {
        let net = two_layer();
        let theta = net.init_params(4);
        let mut ws = net.workspace(4);
        let x = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32 * 0.01);
        let y = [0u8, 1, 2, 0];
        let mut grad = vec![0.0f32; net.param_len()];
        let l1 = net.loss(&theta, &x, &y, &mut ws);
        let l2 = net.loss_grad(&theta, &x, &y, &mut grad, &mut ws);
        assert!((l1 - l2).abs() < 1e-6);
    }

    #[test]
    fn workspace_reuse_across_batch_sizes() {
        let net = two_layer();
        let theta = net.init_params(0);
        let mut ws = net.workspace(8);
        for batch in [8usize, 3, 5, 1, 8] {
            let x = Matrix::zeros(batch, 4);
            let logits = net.forward(&theta, &x, &mut ws);
            assert_eq!(logits.rows(), batch);
        }
    }
}
