//! The layer abstraction: forward/backward over flat parameter slices.
//!
//! A [`Layer`] owns no parameters — only shape information. Parameters are
//! passed in as a `&[f32]` slice of the global flat parameter vector and
//! gradients are written to the matching slice of a flat gradient buffer.
//! This is the interface the paper's ParameterVector refactor of MiniDNN
//! introduces: it is what lets the parallel SGD algorithms treat the model
//! as one shared object with bulk read/update operations.

use lsgd_tensor::Matrix;
use rand::rngs::StdRng;

/// Per-layer, per-thread scratch space reused across iterations.
///
/// Layers that need to remember forward-pass state for their backward pass
/// (max-pool argmax indices, the im2col lowering of a convolution) store it
/// here instead of in the layer itself, keeping layers immutable and
/// shareable across the `m` asynchronous workers.
#[derive(Default)]
pub struct LayerCache {
    /// Flat argmax indices recorded by max-pool forward (one per output
    /// element), consumed by its backward scatter.
    pub argmax: Vec<u32>,
    /// im2col lowering buffer for convolution layers (one sample's
    /// receptive fields as rows).
    pub im2col: Matrix,
    /// Secondary scratch matrix (conv backward uses it for the column
    /// gradient before the col2im scatter).
    pub scratch: Matrix,
}

/// A neural-network layer operating on minibatches.
///
/// Batch convention: activations are row-major [`Matrix`] of shape
/// `(batch, dim)`; multi-channel feature maps are flattened NCHW per row.
pub trait Layer: Send + Sync {
    /// Short human-readable name (for `describe` tables).
    fn name(&self) -> &'static str;

    /// Flattened input dimension per sample.
    fn in_dim(&self) -> usize;

    /// Flattened output dimension per sample.
    fn out_dim(&self) -> usize;

    /// Number of learnable parameters this layer consumes from the flat
    /// parameter vector (0 for activations / pooling).
    fn param_len(&self) -> usize;

    /// Initialises this layer's parameter slice. The paper uses
    /// `N(0, 0.01)` for all parameters (Algorithm 1, `rand_init`).
    fn init_params(&self, params: &mut [f32], rng: &mut StdRng) {
        lsgd_tensor::rng::fill_normal(rng, params, 0.0, 0.01);
    }

    /// Forward pass: reads `input` `(batch, in_dim)`, writes `output`
    /// `(batch, out_dim)` (already correctly sized by the caller).
    fn forward(&self, params: &[f32], input: &Matrix, output: &mut Matrix, cache: &mut LayerCache);

    /// Backward pass.
    ///
    /// * `grad_out` — `dL/d output`, shape `(batch, out_dim)`.
    /// * `grad_params` — `dL/d params` written (not accumulated) here.
    /// * `grad_in` — `dL/d input` written here, shape `(batch, in_dim)`.
    ///
    /// `input`/`output` are the activations recorded by the forward pass.
    #[allow(clippy::too_many_arguments)]
    fn backward(
        &self,
        params: &[f32],
        input: &Matrix,
        output: &Matrix,
        grad_out: &Matrix,
        cache: &LayerCache,
        grad_params: &mut [f32],
        grad_in: &mut Matrix,
    );

    /// One-line architecture description, e.g. `Dense 784 -> 128`.
    fn describe(&self) -> String {
        format!("{} {} -> {}", self.name(), self.in_dim(), self.out_dim())
    }
}
