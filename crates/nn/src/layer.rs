//! The layer abstraction: forward/backward over flat parameter slices.
//!
//! A [`Layer`] owns no parameters — only shape information. Parameters are
//! passed in as a `&[f32]` slice of the global flat parameter vector and
//! gradients are written to the matching slice of a flat gradient buffer.
//! This is the interface the paper's ParameterVector refactor of MiniDNN
//! introduces: it is what lets the parallel SGD algorithms treat the model
//! as one shared object with bulk read/update operations.
//!
//! Every forward/backward call additionally receives a [`StepCtx`]: the
//! per-worker, per-SGD-step compute context carrying the prepacked weight
//! panel cache and the intra-step parallelism policy. Layers are free to
//! ignore it (activations, pooling); the GEMM-heavy layers use it to pack
//! their weight operands once per step and to fan per-sample work out
//! across the unified work-stealing runtime.

use lsgd_runtime::{Handle, Runtime};
use lsgd_tensor::{Matrix, PackedPanelCache};
use rand::rngs::StdRng;

/// Per-worker compute context for one SGD step.
///
/// Owned by the network [`crate::network::Workspace`] (one per worker
/// thread) and handed mutably to every layer call. The network bumps the
/// panel-cache epoch once per forward pass, so all prepacked weight
/// panels are packed at most once per parameter version and shared by
/// every GEMM of the step — each per-sample conv product in the
/// minibatch, and both orientations of a dense layer's forward/backward.
pub struct StepCtx {
    /// Prepacked weight panels, keyed per operand and invalidated per
    /// step (see [`PackedPanelCache`]).
    pub panels: PackedPanelCache,
    /// Whether layers may consult `panels` at all (`false` reproduces the
    /// fresh-pack-per-call behaviour, kept as the benchmark baseline).
    pub use_panels: bool,
    /// Upper bound on intra-step worker threads (`usize::MAX` = as many
    /// as the runtime provides, `1` = fully serial layers).
    pub threads: usize,
    /// Which runtime executes intra-step splits: the process-global one
    /// by default; tests inject a fixed-size runtime here so the parallel
    /// paths are exercised regardless of the host's core count.
    pub runtime: Handle,
}

impl Default for StepCtx {
    fn default() -> Self {
        StepCtx {
            panels: PackedPanelCache::new(),
            use_panels: true,
            threads: usize::MAX,
            runtime: Handle::Global,
        }
    }
}

impl StepCtx {
    /// Splits the context into the pieces a layer's hot path needs, with
    /// disjoint borrows: the mutable panel cache, the panels-enabled
    /// flag, the effective runtime, and the effective thread cap (already
    /// clamped to the runtime size).
    pub fn split(&mut self) -> (&mut PackedPanelCache, bool, &Runtime, usize) {
        let rt = self.runtime.get();
        let threads = self.threads.min(rt.threads()).max(1);
        (&mut self.panels, self.use_panels, rt, threads)
    }
}

/// Per-layer, per-thread scratch space reused across iterations.
///
/// Layers that need to remember forward-pass state for their backward pass
/// (max-pool argmax indices) or want allocation-free per-step scratch (the
/// conv layer's per-sample weight-gradient slab) store it here instead of
/// in the layer itself, keeping layers immutable and shareable across the
/// `m` asynchronous workers.
#[derive(Default)]
pub struct LayerCache {
    /// Flat argmax indices recorded by max-pool forward (one per output
    /// element), consumed by its backward scatter.
    pub argmax: Vec<u32>,
    /// im2col lowering buffer used by the conv layer's baseline
    /// (fresh-pack, serial) forward path; the fast path lowers directly
    /// into packed panels and never materialises it.
    pub im2col: Matrix,
    /// Per-sample `(dW_s | db_s)` slab for the conv backward pass: sample
    /// `s` occupies `[s * param_len, (s + 1) * param_len)`. Samples are
    /// computed independently (possibly in parallel) and then reduced in
    /// ascending sample order, which keeps the summation association —
    /// and therefore every gradient bit — identical to a serial sweep.
    pub grad_slab: Vec<f32>,
}

/// A neural-network layer operating on minibatches.
///
/// Batch convention: activations are row-major [`Matrix`] of shape
/// `(batch, dim)`; multi-channel feature maps are flattened NCHW per row.
pub trait Layer: Send + Sync {
    /// Short human-readable name (for `describe` tables).
    fn name(&self) -> &'static str;

    /// Flattened input dimension per sample.
    fn in_dim(&self) -> usize;

    /// Flattened output dimension per sample.
    fn out_dim(&self) -> usize;

    /// Number of learnable parameters this layer consumes from the flat
    /// parameter vector (0 for activations / pooling).
    fn param_len(&self) -> usize;

    /// Initialises this layer's parameter slice. The paper uses
    /// `N(0, 0.01)` for all parameters (Algorithm 1, `rand_init`).
    fn init_params(&self, params: &mut [f32], rng: &mut StdRng) {
        lsgd_tensor::rng::fill_normal(rng, params, 0.0, 0.01);
    }

    /// Forward pass: reads `input` `(batch, in_dim)`, writes **every**
    /// element of `output` `(batch, out_dim)` (already correctly shaped
    /// by the caller, contents unspecified on entry).
    fn forward(
        &self,
        params: &[f32],
        input: &Matrix,
        output: &mut Matrix,
        cache: &mut LayerCache,
        ctx: &mut StepCtx,
    );

    /// Backward pass.
    ///
    /// * `grad_out` — `dL/d output`, shape `(batch, out_dim)`.
    /// * `grad_params` — `dL/d params` written (not accumulated) here.
    /// * `grad_in` — `dL/d input`: **every** element written, shape
    ///   `(batch, in_dim)` (contents unspecified on entry).
    ///
    /// `input`/`output` are the activations recorded by the forward pass.
    #[allow(clippy::too_many_arguments)]
    fn backward(
        &self,
        params: &[f32],
        input: &Matrix,
        output: &Matrix,
        grad_out: &Matrix,
        cache: &mut LayerCache,
        ctx: &mut StepCtx,
        grad_params: &mut [f32],
        grad_in: &mut Matrix,
    );

    /// One-line architecture description, e.g. `Dense 784 -> 128`.
    fn describe(&self) -> String {
        format!("{} {} -> {}", self.name(), self.in_dim(), self.out_dim())
    }
}

/// Raw base pointer to a row-major matrix whose **disjoint rows** are
/// written concurrently by per-sample tasks.
///
/// Sending one base pointer (rather than overlapping `&mut` row slices)
/// keeps the aliasing model honest, mirroring the GEMM kernel's `CPtr`.
/// All dereferences go through [`RowsPtr::row`] under its contract.
#[derive(Clone, Copy)]
pub(crate) struct RowsPtr {
    ptr: *mut f32,
    stride: usize,
}

unsafe impl Send for RowsPtr {}
unsafe impl Sync for RowsPtr {}

impl RowsPtr {
    /// Wraps a matrix; `stride` is its column count.
    pub(crate) fn of(m: &mut Matrix) -> Self {
        RowsPtr {
            ptr: m.as_mut_slice().as_mut_ptr(),
            stride: m.cols(),
        }
    }

    /// Wraps a flat slab of `stride`-length consecutive records.
    pub(crate) fn of_slab(buf: &mut [f32], stride: usize) -> Self {
        debug_assert!(stride == 0 || buf.len() % stride == 0);
        RowsPtr {
            ptr: buf.as_mut_ptr(),
            stride,
        }
    }

    /// Mutable view of row `r`.
    ///
    /// # Safety
    /// `r` must be in bounds for the wrapped buffer, the underlying
    /// `&mut` borrow must outlive all uses (callers join their tasks
    /// before returning), and no two live references to the same row may
    /// exist — upheld by giving each task a disjoint row range.
    #[inline]
    #[allow(clippy::mut_from_ref)] // disjoint-row aliasing is the caller's contract, per above
    pub(crate) unsafe fn row(&self, r: usize) -> &mut [f32] {
        std::slice::from_raw_parts_mut(self.ptr.add(r * self.stride), self.stride)
    }
}
