//! The exact architectures evaluated in the paper.
//!
//! * Table II — MLP: three Dense(128) + ReLU hidden layers and a
//!   Dense(10) softmax output over 28×28 inputs: `d = 134,794`.
//! * Table III — CNN: Conv(4, 3×3) → Pool(2×2) → Conv(8, 3×3) → Pool(2×2)
//!   → Dense(128) → Dense(10): `d = 27,354`.
//!
//! Both counts are asserted in tests; they are the strongest available
//! fingerprint that this reproduction builds the paper's networks.
//!
//! The softmax of the final layer is fused into the loss
//! ([`crate::loss::cross_entropy_loss_grad`]), so it does not appear as a
//! layer here. Table III also lists ReLU on the MaxPool rows; since
//! `max` and `ReLU` commute and the preceding conv already applies ReLU,
//! the composition collapses to conv → ReLU → pool, which we build.

use crate::activation::Relu;
use crate::conv::Conv2d;
use crate::dense::Dense;
use crate::layer::Layer;
use crate::network::Network;
use crate::pool::MaxPool2d;

/// Image side length of the (synthetic) MNIST-format inputs.
pub const IMAGE_SIDE: usize = 28;
/// Flattened input dimension.
pub const INPUT_DIM: usize = IMAGE_SIDE * IMAGE_SIDE;
/// Number of digit classes.
pub const N_CLASSES: usize = 10;
/// Parameter count of the Table II MLP.
pub const MLP_D: usize = 134_794;
/// Parameter count of the Table III CNN.
pub const CNN_D: usize = 27_354;

/// Table II MLP: 784 → 128 → 128 → 128 → 10, ReLU hidden activations.
pub fn mlp_mnist() -> Network {
    Network::new(vec![
        Box::new(Dense::new(INPUT_DIM, 128)),
        Box::new(Relu::new(128)),
        Box::new(Dense::new(128, 128)),
        Box::new(Relu::new(128)),
        Box::new(Dense::new(128, 128)),
        Box::new(Relu::new(128)),
        Box::new(Dense::new(128, N_CLASSES)),
    ])
}

/// Table III CNN: Conv(4,3×3) → ReLU → Pool(2) → Conv(8,3×3) → ReLU →
/// Pool(2) → Dense(128) → ReLU → Dense(10).
pub fn cnn_mnist() -> Network {
    let c1 = Conv2d::new(1, IMAGE_SIDE, IMAGE_SIDE, 4, 3); // 28 → 26
    let p1 = MaxPool2d::new(4, c1.out_h(), c1.out_w(), 2); // 26 → 13
    let c2 = Conv2d::new(4, p1.out_h(), p1.out_w(), 8, 3); // 13 → 11
    let p2 = MaxPool2d::new(8, c2.out_h(), c2.out_w(), 2); // 11 → 5
    let flat = p2.out_dim(); // 8*5*5 = 200
    let c1_out = c1.out_dim();
    let c2_out = c2.out_dim();
    Network::new(vec![
        Box::new(c1),
        Box::new(Relu::new(c1_out)),
        Box::new(p1),
        Box::new(c2),
        Box::new(Relu::new(c2_out)),
        Box::new(p2),
        Box::new(Dense::new(flat, 128)),
        Box::new(Relu::new(128)),
        Box::new(Dense::new(128, N_CLASSES)),
    ])
}

/// A deliberately small MLP (for fast tests and examples): `in → h → k`.
pub fn tiny_mlp(in_dim: usize, hidden: usize, classes: usize) -> Network {
    Network::new(vec![
        Box::new(Dense::new(in_dim, hidden)),
        Box::new(Relu::new(hidden)),
        Box::new(Dense::new(hidden, classes)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_matches_table_ii_parameter_count() {
        let net = mlp_mnist();
        assert_eq!(net.param_len(), MLP_D, "{}", net.describe());
        assert_eq!(net.in_dim(), 784);
        assert_eq!(net.n_classes(), 10);
    }

    #[test]
    fn cnn_matches_table_iii_parameter_count() {
        let net = cnn_mnist();
        assert_eq!(net.param_len(), CNN_D, "{}", net.describe());
        assert_eq!(net.in_dim(), 784);
        assert_eq!(net.n_classes(), 10);
    }

    #[test]
    fn mlp_layer_breakdown() {
        // 784*128+128 + 128*128+128 (x2) + 128*10+10 = 134,794
        assert_eq!(
            100_480 + 16_512 + 16_512 + 1_290,
            MLP_D,
            "Table II arithmetic"
        );
    }

    #[test]
    fn cnn_layer_breakdown() {
        // conv1 40 + conv2 296 + dense 25,728 + out 1,290 = 27,354
        assert_eq!(40 + 296 + 25_728 + 1_290, CNN_D, "Table III arithmetic");
    }

    #[test]
    fn cnn_forward_runs_on_batch() {
        let net = cnn_mnist();
        let theta = net.init_params(0);
        let mut ws = net.workspace(4);
        let x = lsgd_tensor::Matrix::zeros(4, 784);
        let y = [0u8, 1, 2, 3];
        let loss = net.loss(&theta, &x, &y, &mut ws);
        // Zero input + small random weights → near-uniform predictions.
        assert!((loss - 10f32.ln()).abs() < 0.1, "loss {loss}");
    }

    #[test]
    fn tiny_mlp_dimensions() {
        let net = tiny_mlp(6, 5, 3);
        assert_eq!(net.param_len(), 6 * 5 + 5 + 5 * 3 + 3);
        assert_eq!(net.in_dim(), 6);
        assert_eq!(net.n_classes(), 3);
    }
}
