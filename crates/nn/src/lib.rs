#![warn(missing_docs)]
//! # lsgd-nn — neural-network substrate over a flat parameter vector
//!
//! The Leashed-SGD paper's experimental framework is a refactored MiniDNN
//! (C++) in which *all learnable parameters are extracted into a single
//! collective data structure, the ParameterVector* (paper §V.1). This crate
//! is the Rust equivalent: every layer reads its weights from — and writes
//! its gradients to — sub-slices of one flat `&[f32]`, so the same
//! [`Network`] drives sequential SGD, lock-based AsyncSGD, HOGWILD! and
//! Leashed-SGD without copies or per-algorithm glue.
//!
//! Contents:
//!
//! * [`layer::Layer`] — the layer trait (`forward` / `backward` over flat
//!   parameter slices).
//! * [`dense::Dense`], [`conv::Conv2d`], [`pool::MaxPool2d`],
//!   [`activation::Relu`] — the layer zoo the paper's MLP/CNN need.
//! * [`loss`] — fused softmax + cross-entropy (the paper's output layer).
//! * [`network::Network`] — a sequential container computing minibatch
//!   loss and gradient; [`network::Workspace`] holds per-thread scratch so
//!   `m` asynchronous workers never contend on temporaries.
//! * [`architectures`] — the exact Table II MLP (`d = 134,794`) and
//!   Table III CNN (`d = 27,354`).
//! * [`gradcheck`] — finite-difference gradient verification used by the
//!   test-suite.

pub mod activation;
pub mod architectures;
pub mod conv;
pub mod dense;
pub mod gradcheck;
pub mod layer;
pub mod loss;
pub mod network;
pub mod pool;

pub use architectures::{cnn_mnist, mlp_mnist, tiny_mlp};
pub use layer::{Layer, LayerCache, StepCtx};
pub use network::{ComputeOpts, Network, Workspace};
