//! Parameter-free activation layers.
//!
//! The paper's architectures use ReLU after every layer except the output,
//! where softmax is fused into the cross-entropy loss (see [`crate::loss`]).

use crate::layer::{Layer, LayerCache, StepCtx};
use lsgd_tensor::Matrix;
use rand::rngs::StdRng;

/// Element-wise rectified linear unit `y = max(0, x)`.
#[derive(Debug, Clone)]
pub struct Relu {
    dim: usize,
}

impl Relu {
    /// ReLU over `dim` features.
    pub fn new(dim: usize) -> Self {
        Relu { dim }
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "ReLU"
    }

    fn in_dim(&self) -> usize {
        self.dim
    }

    fn out_dim(&self) -> usize {
        self.dim
    }

    fn param_len(&self) -> usize {
        0
    }

    fn init_params(&self, _params: &mut [f32], _rng: &mut StdRng) {}

    fn forward(
        &self,
        _params: &[f32],
        input: &Matrix,
        output: &mut Matrix,
        _cache: &mut LayerCache,
        _ctx: &mut StepCtx,
    ) {
        let (src, dst) = (input.as_slice(), output.as_mut_slice());
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = if s > 0.0 { s } else { 0.0 };
        }
    }

    fn backward(
        &self,
        _params: &[f32],
        input: &Matrix,
        _output: &Matrix,
        grad_out: &Matrix,
        _cache: &mut LayerCache,
        _ctx: &mut StepCtx,
        _grad_params: &mut [f32],
        grad_in: &mut Matrix,
    ) {
        let (gi, go, x) = (
            grad_in.as_mut_slice(),
            grad_out.as_slice(),
            input.as_slice(),
        );
        // Branchless gate, bit-for-bit equal to
        // `if x > 0 { go } else { 0.0 }`: the mask keeps go's exact bits
        // or yields +0.0. The branchy form cost ~1 ms per CNN step at
        // batch 64 purely in mispredictions (activation signs are
        // effectively random), dwarfing the arithmetic; this form
        // vectorises to a compare + and.
        for (d, (&g, &xv)) in gi.iter_mut().zip(go.iter().zip(x)) {
            let mask = ((xv > 0.0) as u32).wrapping_neg();
            *d = f32::from_bits(g.to_bits() & mask);
        }
    }

    fn describe(&self) -> String {
        format!("ReLU ({})", self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let l = Relu::new(3);
        let x = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.5]);
        let mut y = Matrix::zeros(1, 3);
        l.forward(&[], &x, &mut y, &mut LayerCache::default(), &mut StepCtx::default());
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.5]);
    }

    #[test]
    fn backward_gates_on_input_sign() {
        let l = Relu::new(4);
        let x = Matrix::from_vec(1, 4, vec![-1.0, 1.0, 0.0, 3.0]);
        let y = Matrix::from_vec(1, 4, vec![0.0, 1.0, 0.0, 3.0]);
        let dy = Matrix::from_vec(1, 4, vec![5.0, 5.0, 5.0, 5.0]);
        let mut dx = Matrix::zeros(1, 4);
        l.backward(&[], &x, &y, &dy, &mut LayerCache::default(), &mut StepCtx::default(), &mut [], &mut dx);
        assert_eq!(dx.as_slice(), &[0.0, 5.0, 0.0, 5.0]);
    }

    #[test]
    fn no_parameters() {
        assert_eq!(Relu::new(128).param_len(), 0);
    }
}
