//! Thread shims: `std::thread` normally, model-scheduler threads under
//! `--cfg lsgd_model` inside a model execution.
//!
//! Model threads are real OS threads, but they run user code only when
//! the scheduler in [`crate::exec`] hands them the (single) execution
//! token. `spawn` establishes the usual happens-before edge from the
//! spawning thread to the child's first operation, and `join` from the
//! child's last operation to the joiner.

#[cfg(lsgd_model)]
use crate::exec::{ctx, set_ctx, Ctx, ModelAbort};
#[cfg(lsgd_model)]
use std::sync::Arc;

/// Handle to a spawned (possibly model-scheduled) thread.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    #[cfg(lsgd_model)]
    model_tid: Option<usize>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result. Inside a
    /// model execution this is a schedule point and joins the child's
    /// clock into the caller's.
    pub fn join(self) -> std::thread::Result<T> {
        #[cfg(lsgd_model)]
        if let (Some(c), Some(tid)) = (ctx(), self.model_tid) {
            c.exec.join_thread(c.tid, tid);
            let r = self.inner.join();
            if let Err(p) = &r {
                if p.downcast_ref::<ModelAbort>().is_some() {
                    // The execution is aborting: keep unwinding instead
                    // of handing the sentinel payload to user code.
                    std::panic::resume_unwind(Box::new(ModelAbort));
                }
            }
            return r;
        }
        self.inner.join()
    }
}

/// Spawns a thread. Inside a model execution the child is registered
/// with the scheduler and parked until first scheduled; otherwise this
/// is exactly [`std::thread::spawn`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    #[cfg(lsgd_model)]
    if let Some(c) = ctx() {
        let tid = c.exec.register_thread(c.tid);
        let exec = Arc::clone(&c.exec);
        let inner = std::thread::spawn(move || {
            set_ctx(Some(Ctx {
                exec: Arc::clone(&exec),
                tid,
            }));
            if !exec.start_gate(tid) {
                // Aborted before ever running; unwind silently.
                exec.finish_thread(tid);
                std::panic::resume_unwind(Box::new(ModelAbort));
            }
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
                Ok(v) => {
                    exec.finish_thread(tid);
                    v
                }
                Err(p) => {
                    if p.downcast_ref::<ModelAbort>().is_none() {
                        exec.fail_nopanic(format!(
                            "panic in model thread {tid}: {}",
                            crate::exec::panic_message(p.as_ref())
                        ));
                    }
                    exec.finish_thread(tid);
                    std::panic::resume_unwind(p)
                }
            }
        });
        return JoinHandle {
            inner,
            model_tid: Some(tid),
        };
    }
    JoinHandle {
        inner: std::thread::spawn(f),
        #[cfg(lsgd_model)]
        model_tid: None,
    }
}

/// Cooperatively yields. Inside a model execution the calling thread is
/// deprioritized until another thread has been scheduled — the escape
/// hatch that keeps spin/backoff loops from generating unbounded
/// schedules (see [`crate::exec`]).
pub fn yield_now() {
    #[cfg(lsgd_model)]
    if let Some(c) = ctx() {
        c.exec.yield_thread(c.tid);
        return;
    }
    std::thread::yield_now();
}
