//! `lsgd_check` — a loom-style deterministic concurrency model checker
//! (plus an ordering-audit lint) for the Leashed-SGD lock-free core.
//!
//! The lock-free protocols this workspace implements — the segmented
//! MPMC queue, LAU-SPC parameter publication with counted readers,
//! consistent sharded snapshots, CAS-only buffer reclamation — are
//! correct only under specific atomic-ordering contracts. Stress tests
//! sample a vanishing fraction of the interleavings those contracts
//! must survive. This crate checks them *systematically*: the code
//! under test is compiled against the shim types in [`sync`] (and the
//! thread shims in [`thread`]), which are zero-cost std wrappers in a
//! normal build and, under `--cfg lsgd_model`, route every atomic
//! access through a controlled scheduler that enumerates thread
//! interleavings exhaustively up to a preemption bound.
//!
//! # Using it
//!
//! ```text
//! RUSTFLAGS="--cfg lsgd_model" cargo test -p lsgd_sync --test model_queue
//! ```
//!
//! A model test wraps a small concurrent scenario in [`model`]:
//!
//! ```no_run
//! lsgd_check::model(|| {
//!     // build the structure, spawn lsgd_check::thread::spawn threads,
//!     // join them, assert invariants — the closure runs once per
//!     // explored schedule.
//! });
//! ```
//!
//! On failure the panic message includes a **seed** — the exact
//! sequence of scheduling decisions. Re-run just that interleaving
//! (deterministically, e.g. under a debugger) with
//! `LSGD_MODEL_SEED=<seed>` or [`replay`].
//!
//! # What a failure means
//!
//! The checker fails a schedule on: assertion panics in the test
//! closure, happens-before data races on [`sync::UnsafeCell`] /
//! [`annotate`]d buffer accesses, use-after-free / double-free / leaks
//! of [`annotate::fresh`]-tracked regions, deadlock, and (optionally)
//! unsynchronized `Relaxed` reads. See [`exec`](crate::sync) module
//! docs for the semantics.
//!
//! # Soundness limits — read before trusting a green run
//!
//! * **Bounded preemptions.** By default only schedules with ≤ 2
//!   preemptive context switches are explored (the CHESS result: most
//!   concurrency bugs need very few). A pass is *not* a proof over all
//!   interleavings; raise `LSGD_MODEL_PREEMPTIONS` for more coverage.
//! * **Sequentially consistent values.** Atomic loads observe the
//!   globally latest store. Ordering bugs are caught through the
//!   happens-before model (races on the data the atomics guard), not
//!   through stale-value execution; a protocol whose failure mode is
//!   *only* a stale value with no guarded non-atomic data can slip
//!   through. ThreadSanitizer/Miri in CI complement this from the
//!   value side.
//! * **No spurious CAS failures**; `compare_exchange_weak` behaves
//!   like the strong form under the model.
//! * **Max [`clock::MAX_THREADS`] threads** per execution.
//!
//! The complementary layers (stress, proptest, Miri, TSan) and when to
//! reach for each are described in the workspace README's
//! "Verification" section.

#![warn(missing_docs)]

pub mod annotate;
pub mod audit;
pub mod clock;
pub mod env;
#[cfg_attr(not(lsgd_model), allow(dead_code))]
mod exec;
pub mod sync;
pub mod thread;

pub use exec::{Config, Failure, Report};

/// Whether the calling thread is currently inside a model execution
/// (always `false` in builds without `--cfg lsgd_model`). Shimmed code
/// uses this to pick model-friendly parameters (e.g. a tiny segment
/// capacity) and to force real yields in spin loops.
#[inline]
pub fn model_active() -> bool {
    #[cfg(lsgd_model)]
    {
        exec::model_active()
    }
    #[cfg(not(lsgd_model))]
    {
        false
    }
}

/// Explores the schedule space of `f` under `config` and returns the
/// [`Report`] (no panic on failure — the caller inspects it).
///
/// Without `--cfg lsgd_model` the closure simply runs once on the
/// current thread with std semantics.
pub fn explore(config: Config, f: impl Fn() + Sync) -> Report {
    exec::explore_impl(config, f, None)
}

/// Re-executes exactly one schedule of `f`: the one encoded by `seed`
/// (as printed in a failure message). Deterministic — the same seed
/// always replays the same interleaving or fails loudly if the test
/// closure has diverged.
pub fn replay(config: Config, seed: &str, f: impl Fn() + Sync) -> Report {
    exec::explore_impl(config, f, Some(seed.to_string()))
}

/// Model-checks `f` with [`Config::default`] (plus environment
/// overrides), panicking with the failing seed if any explored
/// schedule fails. This is the entry point model tests use.
///
/// If `LSGD_MODEL_SEED` is set, only that schedule is replayed.
pub fn model(f: impl Fn() + Sync) {
    model_with(Config::default().from_env(), f);
}

/// [`model`] with an explicit configuration (environment overrides and
/// `LSGD_MODEL_SEED` replay still apply).
pub fn model_with(config: Config, f: impl Fn() + Sync) {
    let config = config.from_env();
    let max_schedules = config.max_schedules;
    let report = match env::var("LSGD_MODEL_SEED") {
        Some(seed) => replay(config, &seed, f),
        None => explore(config, f),
    };
    if let Some(failure) = &report.failure {
        panic!(
            "model check failed after {} schedule(s)\n  seed: {:?}  (re-run with \
             LSGD_MODEL_SEED={} to replay this exact interleaving)\n  failure: {}",
            report.schedules, failure.seed, failure.seed, failure.message
        );
    }
    if !report.complete && cfg!(lsgd_model) {
        eprintln!(
            "lsgd_check: exploration stopped at max_schedules={} without exhausting \
             the space (pass a larger Config::max_schedules or LSGD_MODEL_MAX_SCHEDULES)",
            max_schedules
        );
    }
}
