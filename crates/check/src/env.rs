//! Checked parsing for the workspace's `LSGD_*` environment knobs.
//!
//! Every knob used to hand-roll `env::var(..).ok().and_then(|v|
//! v.parse().ok())` — which silently falls back to the default when the
//! value is malformed, turning a typo (`LSGD_THREADS=fuor`) into a
//! mystery perf regression instead of a diagnosable mistake. This module
//! is the one shared parser: a malformed value still falls back (a knob
//! must never abort a run), but the fallback is announced **once per
//! variable** on stderr.
//!
//! It lives in `lsgd_check` because this crate is the std-only bottom of
//! the workspace dependency stack — `sync`, `trace`, `runtime`, `fault`,
//! and `core` can all reach it. `lsgd_core` re-exports it as
//! `lsgd_core::env` for the crates (and tests) that sit above core.

use std::collections::HashSet;
use std::str::FromStr;
use std::sync::{Mutex, OnceLock};

/// One warning per variable per process, whatever parses it and however
/// often: repeated probes of a bad knob must not spam stderr.
fn warned() -> &'static Mutex<HashSet<String>> {
    static WARNED: OnceLock<Mutex<HashSet<String>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Emits `detail` for `name` on stderr, at most once per process.
/// Public so other env-driven front doors (e.g. `lsgd_fault`'s spec
/// parser) share the same dedup set.
pub fn warn_once(name: &str, detail: &str) {
    let mut set = warned().lock().unwrap_or_else(|e| e.into_inner());
    if set.insert(name.to_string()) {
        eprintln!("lsgd: {name}: {detail}");
    }
}

/// Number of variables warned about so far (test hook).
#[doc(hidden)]
pub fn warned_count() -> usize {
    warned().lock().unwrap_or_else(|e| e.into_inner()).len()
}

/// The raw value of `name`, if set and nonempty. An empty value is
/// treated as unset everywhere in this workspace.
pub fn var(name: &str) -> Option<String> {
    std::env::var(name).ok().filter(|v| !v.is_empty())
}

/// Parses `name` as a `T`, warning once (and returning `None`) when the
/// variable is set but malformed. Unset/empty is silently `None`.
pub fn parse<T: FromStr>(name: &str) -> Option<T> {
    let raw = var(name)?;
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => {
            warn_once(
                name,
                &format!(
                    "ignoring malformed value {raw:?} (expected {}); using the default",
                    std::any::type_name::<T>()
                ),
            );
            None
        }
    }
}

/// [`parse`] with an inline default.
pub fn parse_or<T: FromStr>(name: &str, default: T) -> T {
    parse(name).unwrap_or(default)
}

/// Parses `name` as a positive (≥ 1) integer — the shape of every
/// count-like knob (`LSGD_THREADS`, `LSGD_SHARDS`, …). Warns once on a
/// malformed value *or* an explicit zero.
pub fn positive_usize(name: &str) -> Option<usize> {
    match parse::<usize>(name)? {
        0 => {
            warn_once(name, "ignoring 0 (must be a positive integer); using the default");
            None
        }
        n => Some(n),
    }
}

/// Boolean gate: `true` iff `name` is set, nonempty, and not `"0"`
/// (the `LSGD_TRACE` / `LSGD_BENCH_SMOKE` convention).
pub fn flag(name: &str) -> bool {
    var(name).map(|v| v != "0").unwrap_or(false)
}

#[cfg(all(test, not(lsgd_model)))]
mod tests {
    use super::*;

    // Each test uses its own uniquely named variable, so the
    // process-global environment mutation cannot race other tests.

    #[test]
    fn unset_and_empty_are_none_without_warning() {
        assert_eq!(parse::<usize>("LSGD_ENV_TEST_UNSET"), None);
        std::env::set_var("LSGD_ENV_TEST_EMPTY", "");
        assert_eq!(var("LSGD_ENV_TEST_EMPTY"), None);
        assert_eq!(parse_or::<usize>("LSGD_ENV_TEST_EMPTY", 7), 7);
    }

    #[test]
    fn well_formed_values_parse() {
        std::env::set_var("LSGD_ENV_TEST_OK", " 42 ");
        assert_eq!(parse::<usize>("LSGD_ENV_TEST_OK"), Some(42));
        assert_eq!(positive_usize("LSGD_ENV_TEST_OK"), Some(42));
    }

    #[test]
    fn malformed_value_warns_once_and_defaults() {
        std::env::set_var("LSGD_ENV_TEST_BAD", "fuor");
        let before = warned_count();
        assert_eq!(parse_or::<usize>("LSGD_ENV_TEST_BAD", 3), 3);
        assert_eq!(warned_count(), before + 1, "first malformed read warns");
        assert_eq!(parse_or::<usize>("LSGD_ENV_TEST_BAD", 3), 3);
        assert_eq!(warned_count(), before + 1, "repeat reads stay quiet");
    }

    #[test]
    fn zero_count_warns_and_defaults() {
        std::env::set_var("LSGD_ENV_TEST_ZERO", "0");
        let before = warned_count();
        assert_eq!(positive_usize("LSGD_ENV_TEST_ZERO"), None);
        assert!(warned_count() > before);
    }

    #[test]
    fn flag_convention() {
        assert!(!flag("LSGD_ENV_TEST_FLAG_UNSET"));
        std::env::set_var("LSGD_ENV_TEST_FLAG0", "0");
        assert!(!flag("LSGD_ENV_TEST_FLAG0"));
        std::env::set_var("LSGD_ENV_TEST_FLAG1", "1");
        assert!(flag("LSGD_ENV_TEST_FLAG1"));
        std::env::set_var("LSGD_ENV_TEST_FLAGX", "yes");
        assert!(flag("LSGD_ENV_TEST_FLAGX"));
    }
}
