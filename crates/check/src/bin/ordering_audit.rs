//! CI entry point for the ordering-audit lint: scans every `.rs` file
//! under `crates/` and exits nonzero if any `Ordering::Relaxed` /
//! `Ordering::SeqCst` site lacks an adjacent `// ORDERING:`
//! justification comment. See `lsgd_check::audit` for the rules.

use lsgd_check::audit;

fn main() {
    let root = std::env::args_os()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(audit::workspace_root);
    let violations = match audit::audit_crates(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("ordering_audit: failed to scan {}: {e}", root.display());
            std::process::exit(2);
        }
    };
    if violations.is_empty() {
        println!("ordering_audit: all Relaxed/SeqCst sites are justified");
        return;
    }
    for v in &violations {
        eprintln!("{v}");
    }
    eprintln!("ordering_audit: {} unjustified site(s)", violations.len());
    std::process::exit(1);
}
