//! Drop-in shims for the std atomics used by the lock-free core.
//!
//! In a normal build every type and function here is a
//! `#[repr(transparent)]` zero-cost wrapper that inlines straight to
//! its `std::sync::atomic` counterpart — the production code pays
//! nothing for being model-checkable. Under `--cfg lsgd_model`, every
//! operation performed by a thread inside a model execution (see
//! [`crate::model`]) is routed through the controlled scheduler in
//! [`crate::exec`]: the access becomes a schedule point, its declared
//! [`Ordering`] feeds the happens-before model, and the *physical*
//! operation runs `SeqCst` while the thread holds the scheduler lock
//! (exclusivity makes the hardware ordering irrelevant; the declared
//! ordering is what the checker reasons about).
//!
//! Threads with no model context (anything outside [`crate::model`],
//! including under `--cfg lsgd_model`) fall through to plain std
//! behavior, so the shims are safe to use in statics and in code that
//! only sometimes runs under the checker.
//!
//! Two deliberate simplifications, both documented limits of the
//! checker rather than bugs:
//!
//! * `compare_exchange_weak` never fails spuriously under the model —
//!   spurious-failure schedules are not explored.
//! * Atomic values are sequentially consistent (a load observes the
//!   globally latest store); weak-memory *value* outcomes are not
//!   explored. See the soundness discussion in [`crate::exec`].

pub use std::sync::atomic::Ordering;

#[cfg(lsgd_model)]
use crate::exec::{ctx, Op};
#[cfg(lsgd_model)]
use std::panic::Location;

/// An atomic fence with the shims' scheduling/happens-before hooks.
#[inline]
#[cfg_attr(lsgd_model, track_caller)]
pub fn fence(order: Ordering) {
    #[cfg(lsgd_model)]
    if let Some(c) = ctx() {
        c.exec.fence_op(c.tid, order);
        return;
    }
    std::sync::atomic::fence(order);
}

macro_rules! shim_rmw {
    ($($(#[$meta:meta])* fn $method:ident($arg:ident: $argty:ty);)*) => {
        $(
            $(#[$meta])*
            #[inline]
            #[cfg_attr(lsgd_model, track_caller)]
            pub fn $method(&self, $arg: $argty, order: Ordering) -> $argty {
                #[cfg(lsgd_model)]
                if let Some(c) = ctx() {
                    let loc = Location::caller();
                    return c.exec.atomic_op(c.tid, self.addr(), loc, || {
                        // ORDERING: model-mode physical op; the thread is
                        // exclusive under the scheduler lock, the declared
                        // `order` drives the happens-before model instead.
                        let prev = self.0.$method($arg, Ordering::SeqCst);
                        (prev, Op::Rmw {
                            success: true,
                            success_order: order,
                            failure_order: order,
                        })
                    });
                }
                self.0.$method($arg, order)
            }
        )*
    };
}

macro_rules! shim_atomic {
    ($(#[$tymeta:meta])* $name:ident, $value:ty $(, { $($extra:tt)* })?) => {
        $(#[$tymeta])*
        ///
        /// Shim over the std atomic of the same name; see the module
        /// docs for model-mode behavior.
        #[repr(transparent)]
        #[derive(Debug, Default)]
        pub struct $name(std::sync::atomic::$name);

        impl $name {
            /// Creates a new atomic (const, like std).
            #[inline]
            pub const fn new(v: $value) -> Self {
                Self(std::sync::atomic::$name::new(v))
            }

            #[cfg(lsgd_model)]
            #[inline]
            fn addr(&self) -> usize {
                self as *const Self as usize
            }

            /// Returns a mutable reference to the value (exclusive
            /// access; never a schedule point).
            #[inline]
            pub fn get_mut(&mut self) -> &mut $value {
                self.0.get_mut()
            }

            /// Consumes the atomic, returning the value.
            #[inline]
            pub fn into_inner(self) -> $value {
                self.0.into_inner()
            }

            /// Atomic load.
            #[inline]
            #[cfg_attr(lsgd_model, track_caller)]
            pub fn load(&self, order: Ordering) -> $value {
                #[cfg(lsgd_model)]
                if let Some(c) = ctx() {
                    let loc = Location::caller();
                    return c.exec.atomic_op(c.tid, self.addr(), loc, || {
                        // ORDERING: model-mode physical op; exclusivity
                        // under the scheduler lock, declared `order` is
                        // modeled logically.
                        (self.0.load(Ordering::SeqCst), Op::Load(order))
                    });
                }
                self.0.load(order)
            }

            /// Atomic store.
            #[inline]
            #[cfg_attr(lsgd_model, track_caller)]
            pub fn store(&self, v: $value, order: Ordering) {
                #[cfg(lsgd_model)]
                if let Some(c) = ctx() {
                    let loc = Location::caller();
                    return c.exec.atomic_op(c.tid, self.addr(), loc, || {
                        // ORDERING: model-mode physical op; exclusivity
                        // under the scheduler lock, declared `order` is
                        // modeled logically.
                        (self.0.store(v, Ordering::SeqCst), Op::Store(order))
                    });
                }
                self.0.store(v, order)
            }

            /// Atomic swap (an RMW with the given ordering).
            #[inline]
            #[cfg_attr(lsgd_model, track_caller)]
            pub fn swap(&self, v: $value, order: Ordering) -> $value {
                #[cfg(lsgd_model)]
                if let Some(c) = ctx() {
                    let loc = Location::caller();
                    return c.exec.atomic_op(c.tid, self.addr(), loc, || {
                        // ORDERING: model-mode physical op; exclusivity
                        // under the scheduler lock, declared `order` is
                        // modeled logically.
                        let prev = self.0.swap(v, Ordering::SeqCst);
                        (prev, Op::Rmw {
                            success: true,
                            success_order: order,
                            failure_order: order,
                        })
                    });
                }
                self.0.swap(v, order)
            }

            /// Atomic compare-exchange.
            #[inline]
            #[cfg_attr(lsgd_model, track_caller)]
            pub fn compare_exchange(
                &self,
                current: $value,
                new: $value,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$value, $value> {
                #[cfg(lsgd_model)]
                if let Some(c) = ctx() {
                    let loc = Location::caller();
                    return c.exec.atomic_op(c.tid, self.addr(), loc, || {
                        // ORDERING: model-mode physical op; exclusivity
                        // under the scheduler lock, declared orderings
                        // are modeled logically.
                        let r = self.0.compare_exchange(
                            current, new, Ordering::SeqCst, Ordering::SeqCst,
                        );
                        (r, Op::Rmw {
                            success: r.is_ok(),
                            success_order: success,
                            failure_order: failure,
                        })
                    });
                }
                self.0.compare_exchange(current, new, success, failure)
            }

            /// Atomic compare-exchange, weak form. Under the model this
            /// never fails spuriously (see the module docs).
            #[inline]
            #[cfg_attr(lsgd_model, track_caller)]
            pub fn compare_exchange_weak(
                &self,
                current: $value,
                new: $value,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$value, $value> {
                #[cfg(lsgd_model)]
                if ctx().is_some() {
                    return self.compare_exchange(current, new, success, failure);
                }
                self.0.compare_exchange_weak(current, new, success, failure)
            }

            $($($extra)*)?
        }
    };
}

shim_atomic!(
    /// A boolean type which can be safely shared between threads.
    AtomicBool, bool, {
        shim_rmw! {
            /// Logical OR with the current value, returning the previous value.
            fn fetch_or(v: bool);
            /// Logical AND with the current value, returning the previous value.
            fn fetch_and(v: bool);
        }
    }
);

macro_rules! shim_int_atomic {
    ($(#[$tymeta:meta])* $name:ident, $value:ty) => {
        shim_atomic!(
            $(#[$tymeta])*
            $name, $value, {
                shim_rmw! {
                    /// Wrapping add, returning the previous value.
                    fn fetch_add(v: $value);
                    /// Wrapping subtract, returning the previous value.
                    fn fetch_sub(v: $value);
                    /// Bitwise OR, returning the previous value.
                    fn fetch_or(v: $value);
                    /// Bitwise AND, returning the previous value.
                    fn fetch_and(v: $value);
                    /// Maximum with the current value, returning the previous value.
                    fn fetch_max(v: $value);
                }
            }
        );
    };
}

shim_int_atomic!(
    /// An integer type which can be safely shared between threads.
    AtomicU32, u32
);
shim_int_atomic!(
    /// An integer type which can be safely shared between threads.
    AtomicU64, u64
);
shim_int_atomic!(
    /// An integer type which can be safely shared between threads.
    AtomicUsize, usize
);

/// A raw pointer type which can be safely shared between threads.
///
/// Shim over [`std::sync::atomic::AtomicPtr`]; see the module docs for
/// model-mode behavior.
#[repr(transparent)]
#[derive(Debug)]
pub struct AtomicPtr<T>(std::sync::atomic::AtomicPtr<T>);

impl<T> Default for AtomicPtr<T> {
    fn default() -> Self {
        Self::new(std::ptr::null_mut())
    }
}

impl<T> AtomicPtr<T> {
    /// Creates a new atomic pointer (const, like std).
    #[inline]
    pub const fn new(p: *mut T) -> Self {
        Self(std::sync::atomic::AtomicPtr::new(p))
    }

    #[cfg(lsgd_model)]
    #[inline]
    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    /// Returns a mutable reference to the pointer (exclusive access;
    /// never a schedule point).
    #[inline]
    pub fn get_mut(&mut self) -> &mut *mut T {
        self.0.get_mut()
    }

    /// Consumes the atomic, returning the pointer.
    #[inline]
    pub fn into_inner(self) -> *mut T {
        self.0.into_inner()
    }

    /// Atomic load.
    #[inline]
    #[cfg_attr(lsgd_model, track_caller)]
    pub fn load(&self, order: Ordering) -> *mut T {
        #[cfg(lsgd_model)]
        if let Some(c) = ctx() {
            let loc = Location::caller();
            return c.exec.atomic_op(c.tid, self.addr(), loc, || {
                // ORDERING: model-mode physical op; exclusivity under
                // the scheduler lock, declared `order` is modeled
                // logically.
                (self.0.load(Ordering::SeqCst), Op::Load(order))
            });
        }
        self.0.load(order)
    }

    /// Atomic store.
    #[inline]
    #[cfg_attr(lsgd_model, track_caller)]
    pub fn store(&self, p: *mut T, order: Ordering) {
        #[cfg(lsgd_model)]
        if let Some(c) = ctx() {
            let loc = Location::caller();
            return c.exec.atomic_op(c.tid, self.addr(), loc, || {
                // ORDERING: model-mode physical op; exclusivity under
                // the scheduler lock, declared `order` is modeled
                // logically.
                (self.0.store(p, Ordering::SeqCst), Op::Store(order))
            });
        }
        self.0.store(p, order)
    }

    /// Atomic swap (an RMW with the given ordering).
    #[inline]
    #[cfg_attr(lsgd_model, track_caller)]
    pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
        #[cfg(lsgd_model)]
        if let Some(c) = ctx() {
            let loc = Location::caller();
            return c.exec.atomic_op(c.tid, self.addr(), loc, || {
                // ORDERING: model-mode physical op; exclusivity under
                // the scheduler lock, declared `order` is modeled
                // logically.
                let prev = self.0.swap(p, Ordering::SeqCst);
                (prev, Op::Rmw {
                    success: true,
                    success_order: order,
                    failure_order: order,
                })
            });
        }
        self.0.swap(p, order)
    }

    /// Atomic compare-exchange.
    #[inline]
    #[cfg_attr(lsgd_model, track_caller)]
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        #[cfg(lsgd_model)]
        if let Some(c) = ctx() {
            let loc = Location::caller();
            return c.exec.atomic_op(c.tid, self.addr(), loc, || {
                // ORDERING: model-mode physical op; exclusivity under
                // the scheduler lock, declared orderings are modeled
                // logically.
                let r = self
                    .0
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst);
                (r, Op::Rmw {
                    success: r.is_ok(),
                    success_order: success,
                    failure_order: failure,
                })
            });
        }
        self.0.compare_exchange(current, new, success, failure)
    }

    /// Atomic compare-exchange, weak form. Under the model this never
    /// fails spuriously (see the module docs).
    #[inline]
    #[cfg_attr(lsgd_model, track_caller)]
    pub fn compare_exchange_weak(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        #[cfg(lsgd_model)]
        if ctx().is_some() {
            return self.compare_exchange(current, new, success, failure);
        }
        self.0.compare_exchange_weak(current, new, success, failure)
    }
}

/// An `UnsafeCell` whose accesses the model checker can see.
///
/// The closure-based [`with`](UnsafeCell::with) /
/// [`with_mut`](UnsafeCell::with_mut) accessors replace raw `.get()`
/// dereferences in shimmed code: in a normal build they hand the raw
/// pointer straight to the closure (zero cost); under the model each
/// call is recorded as a non-atomic read/write and checked for
/// happens-before data races against every other recorded access to
/// the same cell. The whole cell is one object to the race detector —
/// byte-granular overlap inside a cell is not distinguished.
#[repr(transparent)]
#[derive(Debug, Default)]
pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

// SAFETY: unlike `std::cell::UnsafeCell`, the shim is shareable across
// threads — that is its entire purpose (slots of lock-free structures).
// Soundness of concurrent access is the caller's `unsafe` contract at
// each `with`/`with_mut` site, and exactly what the model checker
// verifies per explored schedule.
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    /// Creates a new cell (const, like std).
    #[inline]
    pub const fn new(v: T) -> Self {
        Self(std::cell::UnsafeCell::new(v))
    }

    /// Consumes the cell, returning the value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }

    /// Runs `f` with a shared (read) pointer to the contents, recording
    /// the access under the model.
    ///
    /// # Safety contract
    ///
    /// Callers uphold the usual `UnsafeCell` aliasing rules; the model
    /// checker verifies (per explored schedule) that they did.
    #[inline]
    #[cfg_attr(lsgd_model, track_caller)]
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        #[cfg(lsgd_model)]
        if let Some(c) = ctx() {
            let loc = Location::caller();
            c.exec
                .data_access(c.tid, self as *const Self as usize, false, loc);
        }
        f(self.0.get())
    }

    /// Runs `f` with an exclusive (write) pointer to the contents,
    /// recording the access under the model.
    ///
    /// # Safety contract
    ///
    /// Callers uphold the usual `UnsafeCell` aliasing rules; the model
    /// checker verifies (per explored schedule) that they did.
    #[inline]
    #[cfg_attr(lsgd_model, track_caller)]
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        #[cfg(lsgd_model)]
        if let Some(c) = ctx() {
            let loc = Location::caller();
            c.exec
                .data_access(c.tid, self as *const Self as usize, true, loc);
        }
        f(self.0.get())
    }

    /// Raw pointer escape hatch, *not* tracked by the model. Only for
    /// sites that have exclusive access by construction (e.g. inside
    /// `&mut self` methods); shared-path accesses must go through
    /// [`with`](UnsafeCell::with) / [`with_mut`](UnsafeCell::with_mut).
    #[inline]
    pub fn get(&self) -> *mut T {
        self.0.get()
    }
}
