//! Vector clocks for happens-before tracking.
//!
//! Every model thread carries a [`VClock`]; component `c[t]` is the
//! number of visible operations thread `t` had performed the last time
//! the owner synchronized with it. Release edges publish the writer's
//! clock on the written object; acquire edges join it into the reader's
//! clock. An access `a` by thread `t` *happens-before* an access `b` by
//! thread `u` iff `t`'s clock component at `a` is `<=` `u`'s view of
//! `t` at `b` — the standard FastTrack-style formulation the race
//! detector in [`crate::exec`] uses.

/// Maximum number of threads one model execution may register
/// (including the root test thread). Clocks are fixed-size arrays so
/// they can be copied and joined without allocation on every operation.
pub const MAX_THREADS: usize = 8;

/// A fixed-width vector clock over [`MAX_THREADS`] components.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct VClock([u32; MAX_THREADS]);

impl VClock {
    /// The all-zero clock (happens-before everything).
    pub const ZERO: VClock = VClock([0; MAX_THREADS]);

    /// Component `t` of the clock.
    #[inline]
    pub fn get(&self, t: usize) -> u32 {
        self.0[t]
    }

    /// Advances the owner's own component (one visible operation).
    #[inline]
    pub fn tick(&mut self, t: usize) -> u32 {
        self.0[t] += 1;
        self.0[t]
    }

    /// Componentwise maximum: afterwards `self` dominates both inputs.
    #[inline]
    pub fn join(&mut self, other: &VClock) {
        for i in 0..MAX_THREADS {
            self.0[i] = self.0[i].max(other.0[i]);
        }
    }

    /// Whether every component of `self` is `<=` the matching component
    /// of `other` (i.e. `self` happens-before-or-equals `other`).
    #[inline]
    pub fn le(&self, other: &VClock) -> bool {
        (0..MAX_THREADS).all(|i| self.0[i] <= other.0[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_le() {
        let mut a = VClock::ZERO;
        let mut b = VClock::ZERO;
        a.tick(0);
        a.tick(0);
        b.tick(1);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        let mut j = a;
        j.join(&b);
        assert!(a.le(&j));
        assert!(b.le(&j));
        assert_eq!(j.get(0), 2);
        assert_eq!(j.get(1), 1);
    }

    #[test]
    fn tick_is_monotone() {
        let mut a = VClock::ZERO;
        assert_eq!(a.tick(3), 1);
        assert_eq!(a.tick(3), 2);
        assert_eq!(a.get(3), 2);
        assert_eq!(a.get(0), 0);
    }
}
