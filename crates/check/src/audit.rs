//! The ordering-audit lint: every `Ordering::Relaxed` / `Ordering::SeqCst`
//! site in `crates/` must carry an adjacent `// ORDERING:` justification.
//!
//! `Relaxed` and `SeqCst` are the two orderings that most often hide
//! bugs — `Relaxed` because it synchronizes nothing, `SeqCst` because
//! it is frequently cargo-culted where a cheaper ordering (or a real
//! protocol argument) is needed. Acquire/Release sites read as intent;
//! these two need a written argument. The audit is textual on purpose:
//! it runs with zero dependencies, in any build, in milliseconds, and
//! the discipline it enforces ("say *why* next to the site") is what
//! reviews and the model checker's reports key off.
//!
//! A site is justified when `// ORDERING:` appears on the line itself
//! or on a line reached by walking upward through (a) continuation
//! lines of the same multi-line statement, (b) attribute lines, and
//! (c) comment lines. The walk stops at the first line that completes
//! an *earlier* statement (ends with `;` or `}`, or is blank), so one
//! comment block above a `compare_exchange` covers every `Ordering::`
//! argument inside it, while a marker stranded behind an unrelated
//! earlier statement does not leak downward. [`MAX_SCAN`] bounds the
//! walk. Lines that are themselves comments are never sites.
//!
//! Run as `cargo run -p lsgd_check --bin ordering_audit` (CI does) or
//! through the `ordering_audit_is_clean` test in this crate.

use std::fmt;
use std::path::{Path, PathBuf};

/// Hard bound on the upward justification walk, counting every line,
/// so pathological files (one giant expression) stay cheap to audit.
pub const MAX_SCAN: usize = 25;

// Assembled at runtime so the audit does not flag its own source.
fn needles() -> [String; 2] {
    let prefix = "Ordering::";
    [format!("{prefix}Relaxed"), format!("{prefix}SeqCst")]
}

fn marker() -> String {
    format!("// {}:", "ORDERING")
}

/// An unjustified ordering site.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Path of the offending file (workspace-relative when possible).
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub text: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: unjustified ordering site (add `{}` nearby): {}",
            self.path.display(),
            self.line,
            marker(),
            self.text
        )
    }
}

fn is_comment_line(trimmed: &str) -> bool {
    trimmed.starts_with("//") || trimmed.starts_with("*") || trimmed.starts_with("/*")
}

/// Whether a (trimmed) code line terminates the statement above it, so
/// the justification walk must not continue past it: end-of-statement
/// `;`, block close, or a blank separator. Block *openers* (`{`) are
/// deliberately not stops — a site that is the first statement of an
/// `if`/`loop` body is justified by the comment above the opener.
fn ends_statement(trimmed: &str) -> bool {
    trimmed.is_empty() || trimmed.ends_with(';') || trimmed.ends_with('}')
}

/// The justification walk described in the module docs: from the site
/// upward through same-statement continuations, attributes and comment
/// lines, stopping at the first completed earlier statement,
/// hard-capped at [`MAX_SCAN`] lines.
fn justified(lines: &[&str], site: usize, marker: &str) -> bool {
    if lines[site].contains(marker) {
        return true;
    }
    for step in 1..=MAX_SCAN.min(site) {
        let raw = lines[site - step];
        if raw.contains(marker) {
            return true;
        }
        let trimmed = raw.trim();
        if is_comment_line(trimmed) {
            continue; // comment blocks are free to traverse
        }
        // Attribute lines (e.g. the `#[cfg]` gating a mutated ordering)
        // ride along with the statement they decorate.
        if trimmed.starts_with("#[") {
            continue;
        }
        if ends_statement(trimmed) {
            return false; // crossed into an unrelated earlier statement
        }
    }
    false
}

/// Audits one file's source text. Exposed for the audit's own tests.
pub fn audit_source(path: &Path, source: &str) -> Vec<Violation> {
    let needles = needles();
    let marker = marker();
    let lines: Vec<&str> = source.lines().collect();
    let mut violations = Vec::new();
    for (i, raw) in lines.iter().enumerate() {
        let trimmed = raw.trim();
        if is_comment_line(trimmed) {
            continue;
        }
        if !needles.iter().any(|n| raw.contains(n.as_str())) {
            continue;
        }
        if !justified(&lines, i, &marker) {
            violations.push(Violation {
                path: path.to_path_buf(),
                line: i + 1,
                text: trimmed.to_string(),
            });
        }
    }
    violations
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            // Skip build output if someone points the audit at a dirty tree.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root (the directory holding `crates/`) from
/// this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// Audits every `.rs` file under `<root>/crates/`, returning all
/// unjustified `Relaxed`/`SeqCst` sites.
pub fn audit_crates(root: &Path) -> std::io::Result<Vec<Violation>> {
    let crates = root.join("crates");
    let mut files = Vec::new();
    walk(&crates, &mut files)?;
    files.sort();
    let mut violations = Vec::new();
    for file in files {
        let source = std::fs::read_to_string(&file)?;
        let display = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        violations.extend(audit_source(&display, &source));
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_bare_site() {
        let src = "let x = a.load(Ordering::";
        let src = format!("{src}Relaxed);\n");
        let v = audit_source(Path::new("t.rs"), &src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn accepts_adjacent_justification() {
        let marker = format!("// {}: monotone counter, no ordering needed\n", "ORDERING");
        let site = format!("let x = a.fetch_add(1, Ordering::{});\n", "Relaxed");
        let src = format!("{marker}{site}");
        assert!(audit_source(Path::new("t.rs"), &src).is_empty());
    }

    #[test]
    fn justification_does_not_cross_statement_boundaries() {
        let marker = format!("// {}: too far away\n", "ORDERING");
        let pad = "let _ = 0;\n";
        let site = format!("a.store(1, Ordering::{});\n", "SeqCst");
        let src = format!("{marker}{pad}{site}");
        assert_eq!(audit_source(Path::new("t.rs"), &src).len(), 1);
    }

    #[test]
    fn one_comment_covers_a_whole_multiline_statement() {
        let src = format!(
            "// {}: CAS pair justified here\n\
             match a.compare_exchange_weak(\n\
                 cur,\n\
                 new,\n\
                 Ordering::{},\n\
                 Ordering::{},\n\
             ) {{\n",
            "ORDERING", "SeqCst", "Relaxed"
        );
        assert!(audit_source(Path::new("t.rs"), &src).is_empty());
    }

    #[test]
    fn marker_does_not_leak_past_an_earlier_statement() {
        let src = format!(
            "// {}: belongs to the line below\n\
             a.store(1, Ordering::Release);\n\
             b.store(1, Ordering::{});\n",
            "ORDERING", "SeqCst"
        );
        let v = audit_source(Path::new("t.rs"), &src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn attributes_and_block_openers_are_traversed() {
        let src = format!(
            "// {}: deliberate mutation cfg\n\
             #[cfg(mutate)]\n\
             if go {{\n\
                 slot.fetch_or(W, Ordering::{});\n\
             }}\n",
            "ORDERING", "Relaxed"
        );
        assert!(audit_source(Path::new("t.rs"), &src).is_empty());
    }

    #[test]
    fn comment_lines_are_not_sites() {
        let src = format!("// mentions Ordering::{} in prose\n", "SeqCst");
        assert!(audit_source(Path::new("t.rs"), &src).is_empty());
    }

    #[test]
    fn acquire_release_are_not_audited() {
        let src = format!("a.store(1, Ordering::{});\n", "Release");
        assert!(audit_source(Path::new("t.rs"), &src).is_empty());
    }

    #[test]
    fn audit_walk_collects_the_runtime_crate() {
        // The work-stealing runtime is the densest ordering surface in
        // the tree; a walk that silently skipped it (renamed dir, broken
        // recursion) would green-light unjustified sites. Plant a bare
        // violation in a scratch tree mirroring `crates/runtime/src` and
        // require the full-tree audit to surface it.
        let root = std::env::temp_dir().join(format!(
            "lsgd-audit-test-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        let src_dir = root.join("crates").join("runtime").join("src");
        std::fs::create_dir_all(&src_dir).unwrap();
        let site = format!("let x = a.load(Ordering::{});\n", "Relaxed");
        std::fs::write(src_dir.join("deque.rs"), site).unwrap();
        let v = audit_crates(&root).unwrap();
        std::fs::remove_dir_all(&root).unwrap();
        assert_eq!(v.len(), 1);
        assert!(v[0].path.ends_with("crates/runtime/src/deque.rs"));

        // And the real tree: the runtime crate must be among the files
        // the production audit walks (audit_crates reads them all; a
        // clean report plus this presence check pins coverage).
        let real = workspace_root().join("crates").join("runtime").join("src");
        assert!(
            real.join("deque.rs").is_file() && real.join("lib.rs").is_file(),
            "crates/runtime sources missing from the audited tree"
        );
    }
}
