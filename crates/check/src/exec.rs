//! The controlled scheduler, DFS schedule explorer, and happens-before
//! race detector behind the model-checking mode (`--cfg lsgd_model`).
//!
//! # Execution model
//!
//! A *model execution* runs the test closure once under a cooperative
//! scheduler: every model thread (the root test thread plus threads
//! created with [`crate::thread::spawn`]) is a real OS thread, but
//! exactly **one** of them executes user code at any time. Threads stop
//! at *schedule points* — before every shimmed atomic operation, fence,
//! spawn, join, and yield — where the scheduler decides which thread
//! runs next. Between two schedule points a thread runs exclusively, so
//! even genuinely racy code under test cannot tear memory *in the
//! checker process*: races are detected logically (vector clocks), not
//! by letting the hardware exhibit them.
//!
//! # Exploration
//!
//! Schedules are enumerated by depth-first search over scheduling
//! decisions. A decision point with more than one allowed thread
//! becomes a branch node recording the full option set; after each
//! execution the deepest node with an unexplored option is advanced and
//! everything below it discarded (classic stateless DFS). Two pruning
//! rules keep the tree finite and small:
//!
//! * **Bounded preemptions** ([`Config::preemption_bound`]): switching
//!   away from a thread that could have continued costs one preemption;
//!   schedules with more than the bound are not explored. Forced
//!   switches (current thread blocked, finished, or yielded) are free.
//!   This is the CHESS heuristic — most concurrency bugs manifest with
//!   two or fewer preemptions — and it is the checker's main soundness
//!   limit: schedules needing more preemptions than the bound are
//!   *not* checked.
//! * **Yield deprioritization**: a thread that calls `yield_now` (the
//!   backoff shim does, in every spin loop) is not schedulable again
//!   until another thread performs an atomic store/RMW (the only events
//!   that can unblock a spin-waiter) or nothing else is runnable. Spin
//!   loops therefore cannot produce unbounded schedules: each revival
//!   is paid for by one of finitely many stores.
//!
//! # Happens-before and race detection
//!
//! Each thread carries a vector clock. Release stores publish the
//! writer's clock on the stored-to object; acquire loads join it.
//! RMWs extend the release sequence of the head store (a `Relaxed`
//! RMW preserves the object's published clock; a `Relaxed` plain store
//! discards it, exactly as in C11). Release/acquire *fences* are
//! modeled through per-thread pending clocks. Non-atomic accesses
//! (`UnsafeCell` shims, [`crate::annotate`] hooks) are checked for
//! data races FastTrack-style: an access unordered (by the clocks)
//! with a previous conflicting access fails the execution. Allocation
//! lifecycle hooks ([`crate::annotate::fresh`]/[`crate::annotate::retire`])
//! additionally detect use-after-free, double-free, and leaked regions.
//!
//! # Values are sequentially consistent
//!
//! Atomic *values* follow the interleaving (sequentially consistent)
//! semantics: a load returns the globally latest store. The checker
//! therefore does **not** explore weak-memory value outcomes (a
//! `Relaxed` load observing a stale value); what it catches is the
//! complementary — and for this codebase primary — failure class:
//! memory orderings too weak to justify the non-atomic accesses they
//! guard, which surface as happens-before data races regardless of the
//! observed values. Unsynchronized cross-thread `Relaxed` reads are
//! additionally surfaced as diagnostics ([`Report::relaxed`]).

use crate::clock::{VClock, MAX_THREADS};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::Location;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Exploration parameters for [`crate::model_with`].
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum number of *preemptive* context switches per schedule
    /// (switching away from a thread that could have continued).
    /// `None` explores the full interleaving space — feasible only for
    /// tiny scenarios. Default: `Some(2)`, the CHESS sweet spot.
    pub preemption_bound: Option<u32>,
    /// Hard cap on explored schedules; exploration stops (with
    /// [`Report::complete`] = `false`) when it is reached. Default
    /// 500 000.
    pub max_schedules: u64,
    /// Per-execution cap on schedule points, as a livelock guard.
    /// Default 100 000.
    pub max_steps: u64,
    /// Treat an unsynchronized cross-thread `Relaxed` load (see
    /// [`Report::relaxed`]) as a failure instead of a diagnostic.
    /// Default `false`: such reads are legitimate in several audited
    /// places (e.g. the queue's lagging tail hint).
    pub fail_on_unsynced_relaxed: bool,
    /// Fail an execution that ends with live (never-retired) regions
    /// registered through [`crate::annotate::fresh`]. Default `true`.
    pub check_leaks: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: Some(2),
            max_schedules: 500_000,
            max_steps: 100_000,
            fail_on_unsynced_relaxed: false,
            check_leaks: true,
        }
    }
}

impl Config {
    /// Applies `LSGD_MODEL_PREEMPTIONS` / `LSGD_MODEL_MAX_SCHEDULES`
    /// environment overrides (used by CI to scale exploration without
    /// touching test code).
    pub fn from_env(mut self) -> Self {
        if let Some(n) = crate::env::parse::<u32>("LSGD_MODEL_PREEMPTIONS") {
            self.preemption_bound = Some(n);
        }
        if let Some(n) = crate::env::parse::<u64>("LSGD_MODEL_MAX_SCHEDULES") {
            self.max_schedules = n;
        }
        self
    }
}

/// A failing schedule: the seed that replays it and the failure text.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Branch decisions of the failing schedule, one digit per branch
    /// point (the thread id that was scheduled). Feed to
    /// [`crate::replay`] or the `LSGD_MODEL_SEED` environment variable.
    pub seed: String,
    /// The failure message (panic text, race report, deadlock, ...).
    pub message: String,
}

/// Outcome of an exploration ([`crate::explore`] / [`crate::replay`]).
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of schedules executed.
    pub schedules: u64,
    /// Whether the (preemption-bounded) schedule space was exhausted.
    /// `false` when [`Config::max_schedules`] stopped exploration
    /// early or when a failure stopped it.
    pub complete: bool,
    /// The first failing schedule, if any.
    pub failure: Option<Failure>,
    /// Distinct sites where a `Relaxed` load observed a cross-thread
    /// store with no happens-before edge to the loader. Diagnostic by
    /// default; see [`Config::fail_on_unsynced_relaxed`].
    pub relaxed: BTreeSet<String>,
}

// ---------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------

/// Sentinel payload for the internal "execution aborted" unwind. Raised
/// with `resume_unwind` (no panic hook noise) and swallowed by thread
/// wrappers and the root driver.
pub(crate) struct ModelAbort;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    Runnable,
    /// Deprioritized until another thread is scheduled.
    Yielded,
    /// Waiting for the given thread to finish.
    BlockedJoin(usize),
    Finished,
}

struct ThreadInfo {
    state: TState,
    clock: VClock,
    /// Clock published by this thread's last release fence (backs
    /// `fence(Release)` + `Relaxed` store publication).
    fence_rel: Option<VClock>,
    /// Syncs observed by `Relaxed` loads, joined at the next acquire
    /// fence.
    pending_acq: VClock,
    /// Clock at `Finished`, joined by joiners.
    final_clock: VClock,
}

impl ThreadInfo {
    fn new(clock: VClock) -> Self {
        ThreadInfo {
            state: TState::Runnable,
            clock,
            fence_rel: None,
            pending_acq: VClock::ZERO,
            final_clock: VClock::ZERO,
        }
    }
}

#[derive(Default)]
struct AtomicMeta {
    /// Release-sequence clock available to acquiring readers.
    sync: VClock,
    /// Identity of the last store, for the `Relaxed` diagnostics.
    write_tid: usize,
    write_time: u32,
    /// Per-thread own-clock component at that thread's last operation
    /// on this atomic — checked against the freeing thread's clock by
    /// `retire` (freeing memory another thread may still touch is a
    /// use-after-free even if the touch is atomic).
    last_access: [u32; MAX_THREADS],
}

#[derive(Default)]
struct DataMeta {
    write_tid: usize,
    write_time: u32,
    write_loc: Option<&'static Location<'static>>,
    reads: [u32; MAX_THREADS],
    read_locs: [Option<&'static Location<'static>>; MAX_THREADS],
}

struct Region {
    len: usize,
    live: bool,
}

/// Kind of shimmed atomic operation, as reported by the sync shims.
pub(crate) enum Op {
    Load(Ordering),
    Store(Ordering),
    /// `success == false` means a failed compare-exchange: a pure load
    /// with the failure ordering.
    Rmw {
        success: bool,
        success_order: Ordering,
        failure_order: Ordering,
    },
}

/// One DFS branch node: the allowed threads at a decision point and the
/// index currently being explored.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Choice {
    options: Vec<usize>,
    picked: usize,
}

/// The DFS trace, reused across executions of one exploration.
pub(crate) struct Explorer {
    trace: Vec<Choice>,
    pos: usize,
    /// When replaying, the forced pick (thread id) per branch point.
    replay: Option<Vec<usize>>,
}

impl Explorer {
    fn new(replay: Option<Vec<usize>>) -> Self {
        Explorer {
            trace: Vec::new(),
            pos: 0,
            replay,
        }
    }

    /// Moves to the next unexplored schedule; `false` when the space is
    /// exhausted (or when replaying, which visits exactly one schedule).
    fn advance(&mut self) -> bool {
        if self.replay.is_some() {
            return false;
        }
        while let Some(last) = self.trace.last_mut() {
            if last.picked + 1 < last.options.len() {
                last.picked += 1;
                self.pos = 0;
                return true;
            }
            self.trace.pop();
        }
        false
    }

    /// The executed schedule as a seed string (one digit per branch).
    fn seed(&self) -> String {
        self.trace
            .iter()
            .map(|c| char::from_digit(c.options[c.picked] as u32, 36).unwrap_or('?'))
            .collect()
    }
}

/// Parses a seed string back into per-branch thread ids.
pub(crate) fn parse_seed(seed: &str) -> Option<Vec<usize>> {
    seed.chars()
        .map(|c| c.to_digit(36).map(|d| d as usize))
        .collect()
}

struct ExecState {
    config: Config,
    threads: Vec<ThreadInfo>,
    active: usize,
    steps: u64,
    preemptions: u32,
    explorer: Explorer,
    atomics: BTreeMap<usize, AtomicMeta>,
    data: BTreeMap<usize, DataMeta>,
    regions: BTreeMap<usize, Region>,
    relaxed: BTreeSet<String>,
    failure: Option<String>,
    aborting: bool,
}

/// One model execution's shared scheduler. All model threads hold an
/// `Arc` to it through their thread-local context.
pub(crate) struct Exec {
    state: Mutex<ExecState>,
    cv: Condvar,
}

#[derive(Clone)]
pub(crate) struct Ctx {
    pub exec: Arc<Exec>,
    pub tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The current thread's model context, if it is a model thread inside
/// an active execution.
pub(crate) fn ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Whether the calling thread is currently controlled by the model
/// scheduler (always `false` outside `--cfg lsgd_model` builds).
pub(crate) fn model_active() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

fn acquires(o: Ordering) -> bool {
    // ORDERING: not an atomic operation — this is the checker's own
    // classification of which orderings carry acquire semantics.
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn releases(o: Ordering) -> bool {
    // ORDERING: not an atomic operation — release-semantics classifier.
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn abort() -> ! {
    std::panic::resume_unwind(Box::new(ModelAbort))
}

impl Exec {
    fn new(config: Config, explorer: Explorer) -> Self {
        let mut threads = Vec::with_capacity(4);
        let mut root_clock = VClock::ZERO;
        root_clock.tick(0);
        threads.push(ThreadInfo::new(root_clock));
        Exec {
            state: Mutex::new(ExecState {
                config,
                threads,
                active: 0,
                steps: 0,
                preemptions: 0,
                explorer,
                atomics: BTreeMap::new(),
                data: BTreeMap::new(),
                regions: BTreeMap::new(),
                relaxed: BTreeSet::new(),
                failure: None,
                aborting: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records a failure (first one wins), wakes every parked thread,
    /// and unwinds the calling thread out of the execution.
    fn fail(&self, mut st: MutexGuard<'_, ExecState>, msg: String) -> ! {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.aborting = true;
        self.cv.notify_all();
        drop(st);
        abort()
    }

    /// Records a failure without unwinding (for use outside the
    /// schedule-point protocol, e.g. from the thread wrapper).
    pub(crate) fn fail_nopanic(&self, msg: String) {
        let mut st = self.lock();
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.aborting = true;
        self.cv.notify_all();
    }

    // -----------------------------------------------------------------
    // Scheduling
    // -----------------------------------------------------------------

    /// Picks the next thread to run. `None` means nothing is runnable:
    /// either everything is finished (fine) or a deadlock (failure is
    /// recorded by the caller). Must be called with the state locked.
    fn decide(&self, st: &mut ExecState) -> Result<Option<usize>, String> {
        let mut runnable: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t].state == TState::Runnable)
            .collect();
        if runnable.is_empty() {
            // Revive yielded threads only when nothing else can run.
            let yielded: Vec<usize> = (0..st.threads.len())
                .filter(|&t| st.threads[t].state == TState::Yielded)
                .collect();
            if yielded.is_empty() {
                let blocked = st
                    .threads
                    .iter()
                    .any(|t| matches!(t.state, TState::BlockedJoin(_)));
                if blocked {
                    return Err("deadlock: every live thread is blocked on a join".to_string());
                }
                return Ok(None);
            }
            for &t in &yielded {
                st.threads[t].state = TState::Runnable;
            }
            runnable = yielded;
        }

        let cur = st.active;
        let cur_runnable = runnable.contains(&cur);
        let options: Vec<usize> = if cur_runnable {
            let budget_left = st
                .config
                .preemption_bound
                .map_or(true, |b| st.preemptions < b);
            if budget_left {
                // Current thread first (the no-preemption default),
                // then the preemptive alternatives in tid order.
                std::iter::once(cur)
                    .chain(runnable.iter().copied().filter(|&t| t != cur))
                    .collect()
            } else {
                vec![cur]
            }
        } else {
            runnable
        };

        let pick = if options.len() == 1 {
            options[0]
        } else {
            let ex = &mut st.explorer;
            let pick = if ex.pos < ex.trace.len() {
                let node = &ex.trace[ex.pos];
                if node.options != options {
                    return Err(format!(
                        "schedule divergence at branch {}: recorded options {:?}, \
                         recomputed {:?} — the test closure is nondeterministic",
                        ex.pos, node.options, options
                    ));
                }
                node.options[node.picked]
            } else if let Some(replay) = &ex.replay {
                match replay.get(ex.pos) {
                    Some(&tid) if options.contains(&tid) => {
                        let picked = options.iter().position(|&t| t == tid).unwrap();
                        ex.trace.push(Choice {
                            options: options.clone(),
                            picked,
                        });
                        tid
                    }
                    Some(&tid) => {
                        return Err(format!(
                            "replay seed diverged at branch {}: seed wants thread {tid}, \
                             options are {options:?}",
                            ex.pos
                        ));
                    }
                    None => {
                        return Err(format!(
                            "replay seed exhausted at branch {} (options {options:?})",
                            ex.pos
                        ));
                    }
                }
            } else {
                ex.trace.push(Choice {
                    options: options.clone(),
                    picked: 0,
                });
                options[0]
            };
            st.explorer.pos += 1;
            pick
        };

        if cur_runnable && pick != cur {
            st.preemptions += 1;
        }
        Ok(Some(pick))
    }

    /// Blocks until `tid` is the active thread (abort-aware). Must be
    /// entered with the state locked; returns with it locked.
    fn wait_for_turn<'a>(
        &'a self,
        mut st: MutexGuard<'a, ExecState>,
        tid: usize,
    ) -> MutexGuard<'a, ExecState> {
        while st.active != tid {
            if st.aborting {
                drop(st);
                abort();
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st
    }

    /// The schedule point: counts a step, lets the explorer switch
    /// threads, and returns (locked) once `tid` is active. The abort
    /// fast path makes shim calls during abort-unwinding (e.g. from
    /// `Drop` impls) pass straight through instead of panicking again,
    /// which would abort the process.
    fn schedule<'a>(&'a self, tid: usize) -> Option<MutexGuard<'a, ExecState>> {
        let mut st = self.lock();
        if st.aborting {
            return None;
        }
        st.steps += 1;
        if st.steps > st.config.max_steps {
            let max = st.config.max_steps;
            self.fail(
                st,
                format!("exceeded {max} schedule points in one execution (livelock?)"),
            );
        }
        match self.decide(&mut st) {
            Ok(Some(pick)) => {
                if pick != tid {
                    st.active = pick;
                    self.cv.notify_all();
                    st = self.wait_for_turn(st, tid);
                }
                Some(st)
            }
            Ok(None) => Some(st), // sole survivor; keep running
            Err(msg) => self.fail(st, msg),
        }
    }

    // -----------------------------------------------------------------
    // Visible operations (called from the sync shims)
    // -----------------------------------------------------------------

    /// Runs one atomic operation at a schedule point: schedules, then
    /// performs `phys` (the real std atomic op — exclusive by
    /// construction) and applies the clock rules for `op`.
    pub(crate) fn atomic_op<R>(
        &self,
        tid: usize,
        addr: usize,
        loc: &'static Location<'static>,
        phys: impl FnOnce() -> (R, Op),
    ) -> R {
        let st = self.schedule(tid);
        let (r, op) = phys();
        let Some(mut st) = st else { return r };
        if let Err(msg) = Self::record_atomic(&mut st, tid, addr, loc, &op) {
            self.fail(st, msg);
        }
        r
    }

    fn check_region(st: &ExecState, addr: usize) -> Result<(), String> {
        if let Some((&start, region)) = st.regions.range(..=addr).next_back() {
            if addr < start + region.len && !region.live {
                return Err("use-after-free: access to retired memory region".to_string());
            }
        }
        Ok(())
    }

    fn record_atomic(
        st: &mut ExecState,
        tid: usize,
        addr: usize,
        loc: &'static Location<'static>,
        op: &Op,
    ) -> Result<(), String> {
        Self::check_region(st, addr)
            .map_err(|e| format!("{e} (atomic access by thread {tid} at {loc})"))?;
        let time = st.threads[tid].clock.tick(tid);
        let clock = st.threads[tid].clock;
        let fence_rel = st.threads[tid].fence_rel;
        // Snapshot the object's published state, then apply the clock
        // rules (two phases to keep the borrows of `st` disjoint).
        let (sync, w_tid, w_time) = {
            let meta = st.atomics.entry(addr).or_default();
            meta.last_access[tid] = time;
            (meta.sync, meta.write_tid, meta.write_time)
        };
        // Unsynchronized cross-thread Relaxed read diagnostic: the last
        // store is not happens-before this (non-acquiring) load.
        let unsynced = w_tid != tid && w_time > clock.get(w_tid);
        let mut flag_relaxed = false;
        let mut read_side = |st: &mut ExecState, acq: bool| {
            if acq {
                st.threads[tid].clock.join(&sync);
            } else {
                st.threads[tid].pending_acq.join(&sync);
                flag_relaxed = unsynced;
            }
        };
        match *op {
            Op::Load(o) => read_side(st, acquires(o)),
            Op::Store(o) => {
                let meta = st.atomics.entry(addr).or_default();
                meta.write_tid = tid;
                meta.write_time = time;
                // A plain store starts a fresh release sequence (or
                // none at all: Relaxed publishes only through an
                // earlier release fence).
                meta.sync = if releases(o) {
                    clock
                } else {
                    fence_rel.unwrap_or(VClock::ZERO)
                };
            }
            Op::Rmw {
                success,
                success_order,
                failure_order,
            } => {
                if success {
                    read_side(st, acquires(success_order));
                    let joined = st.threads[tid].clock;
                    let meta = st.atomics.entry(addr).or_default();
                    meta.write_tid = tid;
                    meta.write_time = time;
                    // An RMW extends the existing release sequence.
                    if releases(success_order) {
                        meta.sync.join(&joined);
                    } else if let Some(f) = fence_rel {
                        meta.sync.join(&f);
                    }
                } else {
                    read_side(st, acquires(failure_order));
                }
            }
        }
        // A store (or successful RMW) may be exactly what a yielded
        // spin-waiter is waiting on: make every yielded thread
        // schedulable again. Pure loads never revive anyone, so two
        // spin-waiters cannot ping-pong each other forever while the
        // thread they both wait on starves — and each thread performs
        // finitely many stores, so revivals (hence schedules) stay
        // finite.
        if matches!(*op, Op::Store(_) | Op::Rmw { success: true, .. }) {
            for t in 0..st.threads.len() {
                if t != tid && st.threads[t].state == TState::Yielded {
                    st.threads[t].state = TState::Runnable;
                }
            }
        }
        if flag_relaxed {
            st.relaxed
                .insert(format!("{loc}: Relaxed load observes unsynchronized cross-thread store"));
            if st.config.fail_on_unsynced_relaxed {
                return Err(format!(
                    "unsynchronized Relaxed load at {loc} (thread {tid}): \
                     the observed store has no happens-before edge to this thread"
                ));
            }
        }
        Ok(())
    }

    /// A release/acquire/SeqCst fence at a schedule point.
    pub(crate) fn fence_op(&self, tid: usize, order: Ordering) {
        let Some(mut st) = self.schedule(tid) else {
            return;
        };
        st.threads[tid].clock.tick(tid);
        if acquires(order) {
            let pending = std::mem::replace(&mut st.threads[tid].pending_acq, VClock::ZERO);
            st.threads[tid].clock.join(&pending);
        }
        if releases(order) {
            st.threads[tid].fence_rel = Some(st.threads[tid].clock);
        }
    }

    /// A non-atomic data access (no schedule point; exclusivity is
    /// already guaranteed). Fails the execution on a happens-before
    /// data race.
    pub(crate) fn data_access(
        &self,
        tid: usize,
        addr: usize,
        is_write: bool,
        loc: &'static Location<'static>,
    ) {
        let mut st = self.lock();
        if st.aborting {
            return;
        }
        if let Err(e) = Self::check_region(&st, addr) {
            self.fail(st, format!("{e} (data access by thread {tid} at {loc})"));
        }
        let time = st.threads[tid].clock.tick(tid);
        let clock = st.threads[tid].clock;
        let (w_tid, w_time, w_loc, r_times, r_locs) = {
            let meta = st.data.entry(addr).or_default();
            (
                meta.write_tid,
                meta.write_time,
                meta.write_loc,
                meta.reads,
                meta.read_locs,
            )
        };
        // A conflicting earlier access races unless it happens-before
        // this one under the acquired clocks.
        if w_time > clock.get(w_tid) {
            let kind = if is_write { "write" } else { "read" };
            let w_loc = w_loc.map_or("<unknown>".to_string(), |l| l.to_string());
            self.fail(
                st,
                format!(
                    "data race: {kind} by thread {tid} at {loc} is unordered with \
                     write by thread {w_tid} at {w_loc}"
                ),
            );
        }
        if is_write {
            for (s, &rt) in r_times.iter().enumerate() {
                if s != tid && rt > clock.get(s) {
                    let r_loc = r_locs[s].map_or("<unknown>".to_string(), |l| l.to_string());
                    self.fail(
                        st,
                        format!(
                            "data race: write by thread {tid} at {loc} is unordered with \
                             read by thread {s} at {r_loc}"
                        ),
                    );
                }
            }
            let meta = st.data.entry(addr).or_default();
            meta.write_tid = tid;
            meta.write_time = time;
            meta.write_loc = Some(loc);
            // All earlier reads are now ordered before this write.
            meta.reads = [0; MAX_THREADS];
            meta.read_locs = [None; MAX_THREADS];
        } else {
            let meta = st.data.entry(addr).or_default();
            meta.reads[tid] = time;
            meta.read_locs[tid] = Some(loc);
        }
    }

    /// Registers a freshly allocated region (clears any stale history
    /// a recycled address range may carry).
    pub(crate) fn fresh(&self, addr: usize, len: usize) {
        let mut st = self.lock();
        if st.aborting {
            return;
        }
        let stale: Vec<usize> = st
            .regions
            .range(..addr + len)
            .filter(|(&s, r)| s + r.len > addr)
            .map(|(&s, _)| s)
            .collect();
        for s in stale {
            st.regions.remove(&s);
        }
        let in_range: Vec<usize> = st
            .atomics
            .range(addr..addr + len)
            .map(|(&a, _)| a)
            .collect();
        for a in in_range {
            st.atomics.remove(&a);
        }
        let in_range: Vec<usize> = st.data.range(addr..addr + len).map(|(&a, _)| a).collect();
        for a in in_range {
            st.data.remove(&a);
        }
        st.regions.insert(addr, Region { len, live: true });
    }

    /// Retires a region registered with [`Exec::fresh`]: checks the
    /// free is ordered after every recorded access to memory inside it,
    /// detects double frees, and arms use-after-free detection for the
    /// range.
    pub(crate) fn retire(&self, tid: usize, addr: usize, len: usize, loc: &'static Location<'static>) {
        let mut st = self.lock();
        if st.aborting {
            return;
        }
        let retire_state = match st.regions.get_mut(&addr) {
            Some(r) if r.live => {
                r.live = false;
                r.len = r.len.max(len);
                0u8
            }
            Some(_) => 1,
            None => 2,
        };
        match retire_state {
            1 => self.fail(
                st,
                format!("double free: region retired twice (thread {tid} at {loc})"),
            ),
            2 => self.fail(
                st,
                format!(
                    "invalid free: retiring a region never registered as fresh \
                     (thread {tid} at {loc})"
                ),
            ),
            _ => {}
        }
        let clock = st.threads[tid].clock;
        let range = addr..addr + len;
        let mut bad: Option<String> = None;
        for (_, meta) in st.atomics.range(range.clone()) {
            for s in 0..MAX_THREADS {
                if meta.last_access[s] > clock.get(s) {
                    bad = Some(format!(
                        "freed while in use: thread {tid} (at {loc}) frees memory whose \
                         atomic state was accessed by thread {s} with no happens-before \
                         edge to the free"
                    ));
                }
            }
        }
        for (_, meta) in st.data.range(range.clone()) {
            if meta.write_time > clock.get(meta.write_tid) {
                bad = Some(format!(
                    "freed while in use: thread {tid} (at {loc}) frees memory written by \
                     thread {} with no happens-before edge to the free",
                    meta.write_tid
                ));
            }
            for s in 0..MAX_THREADS {
                if meta.reads[s] > clock.get(s) {
                    bad = Some(format!(
                        "freed while in use: thread {tid} (at {loc}) frees memory read by \
                         thread {s} with no happens-before edge to the free"
                    ));
                }
            }
        }
        if let Some(msg) = bad {
            self.fail(st, msg);
        }
        let keys: Vec<usize> = st.atomics.range(range.clone()).map(|(&a, _)| a).collect();
        for a in keys {
            st.atomics.remove(&a);
        }
        let keys: Vec<usize> = st.data.range(range).map(|(&a, _)| a).collect();
        for a in keys {
            st.data.remove(&a);
        }
    }

    // -----------------------------------------------------------------
    // Threads
    // -----------------------------------------------------------------

    /// Registers a child thread (happens-before edge from the spawn).
    /// Returns its tid. The spawn itself is a schedule point.
    pub(crate) fn register_thread(&self, parent: usize) -> usize {
        let Some(mut st) = self.schedule(parent) else {
            // Aborting: hand out a dummy tid; the child will exit at
            // its start gate.
            return MAX_THREADS;
        };
        if st.threads.len() >= MAX_THREADS {
            self.fail(
                st,
                format!("model execution spawned more than {MAX_THREADS} threads"),
            );
        }
        st.threads[parent].clock.tick(parent);
        let child_clock = st.threads[parent].clock;
        let tid = st.threads.len();
        st.threads.push(ThreadInfo::new(child_clock));
        tid
    }

    /// Parks the brand-new child OS thread until the scheduler picks
    /// it for the first time. Returns `false` if the execution aborted
    /// before that (the child must exit without running user code).
    pub(crate) fn start_gate(&self, tid: usize) -> bool {
        let mut st = self.lock();
        loop {
            if st.aborting {
                return false;
            }
            if st.active == tid {
                return true;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Marks `tid` finished, wakes joiners, and hands the schedule to
    /// the next runnable thread.
    pub(crate) fn finish_thread(&self, tid: usize) {
        let mut st = self.lock();
        st.threads[tid].state = TState::Finished;
        st.threads[tid].final_clock = st.threads[tid].clock;
        for t in 0..st.threads.len() {
            if st.threads[t].state == TState::BlockedJoin(tid) {
                st.threads[t].state = TState::Runnable;
            }
        }
        if st.aborting {
            self.cv.notify_all();
            return;
        }
        if st.active == tid {
            match self.decide(&mut st) {
                Ok(Some(pick)) => {
                    st.active = pick;
                    self.cv.notify_all();
                }
                Ok(None) => {
                    // Everything finished; wake the root drain.
                    self.cv.notify_all();
                }
                Err(msg) => {
                    // Record without unwinding: the thread is already
                    // on its way out.
                    if st.failure.is_none() {
                        st.failure = Some(msg);
                    }
                    st.aborting = true;
                    self.cv.notify_all();
                }
            }
        }
    }

    /// Blocks `tid` until `target` finishes, joining its final clock.
    pub(crate) fn join_thread(&self, tid: usize, target: usize) {
        let Some(mut st) = self.schedule(tid) else {
            return;
        };
        if st.threads[target].state != TState::Finished {
            st.threads[tid].state = TState::BlockedJoin(target);
            match self.decide(&mut st) {
                Ok(Some(pick)) => {
                    st.active = pick;
                    self.cv.notify_all();
                }
                Ok(None) => unreachable!("joiner blocked but nothing runnable"),
                Err(msg) => self.fail(st, msg),
            }
            loop {
                if st.aborting {
                    drop(st);
                    abort();
                }
                if st.active == tid && st.threads[tid].state == TState::Runnable {
                    break;
                }
                st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
        st.threads[tid].clock.tick(tid);
        let final_clock = st.threads[target].final_clock;
        st.threads[tid].clock.join(&final_clock);
    }

    /// Deprioritizes the calling thread until another thread has been
    /// scheduled (the spin-loop escape hatch; see the module docs).
    pub(crate) fn yield_thread(&self, tid: usize) {
        let mut st = self.lock();
        if st.aborting {
            return;
        }
        st.steps += 1;
        if st.steps > st.config.max_steps {
            let max = st.config.max_steps;
            self.fail(
                st,
                format!("exceeded {max} schedule points in one execution (livelock?)"),
            );
        }
        st.threads[tid].state = TState::Yielded;
        match self.decide(&mut st) {
            Ok(Some(pick)) => {
                st.threads[tid].state = if pick == tid {
                    TState::Runnable
                } else {
                    st.active = pick;
                    self.cv.notify_all();
                    TState::Yielded
                };
                if pick != tid {
                    let mut st = self.wait_for_turn(st, tid);
                    st.threads[tid].state = TState::Runnable;
                }
            }
            Ok(None) => {
                st.threads[tid].state = TState::Runnable;
            }
            Err(msg) => self.fail(st, msg),
        }
    }

    /// Root-only: waits until every spawned thread has finished,
    /// scheduling them as needed. The root thread is marked finished
    /// for scheduling purposes while it drains.
    fn drain_root(&self) {
        let mut st = self.lock();
        st.threads[0].state = TState::Finished;
        st.threads[0].final_clock = st.threads[0].clock;
        loop {
            let all_done = st
                .threads
                .iter()
                .all(|t| t.state == TState::Finished);
            if all_done {
                return;
            }
            if st.aborting {
                self.cv.notify_all();
            } else if st.active == 0 {
                match self.decide(&mut st) {
                    Ok(Some(pick)) => {
                        st.active = pick;
                        self.cv.notify_all();
                    }
                    Ok(None) => {}
                    Err(msg) => {
                        if st.failure.is_none() {
                            st.failure = Some(msg);
                        }
                        st.aborting = true;
                        self.cv.notify_all();
                    }
                }
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

// ---------------------------------------------------------------------
// The exploration driver
// ---------------------------------------------------------------------

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// RAII guard restoring the root thread's empty model context even if
/// the closure unwinds.
struct RootCtxGuard;

impl Drop for RootCtxGuard {
    fn drop(&mut self) {
        set_ctx(None);
    }
}

fn run_one(
    config: &Config,
    explorer: Explorer,
    f: &(dyn Fn() + Sync),
) -> (Explorer, Option<String>, BTreeSet<String>, String) {
    let exec = Arc::new(Exec::new(config.clone(), explorer));
    set_ctx(Some(Ctx {
        exec: Arc::clone(&exec),
        tid: 0,
    }));
    let _guard = RootCtxGuard;
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    if let Err(payload) = result {
        if payload.downcast_ref::<ModelAbort>().is_none() {
            exec.fail_nopanic(format!("panic: {}", panic_message(payload.as_ref())));
        }
    }
    exec.drain_root();
    drop(_guard);

    let mut st = exec.lock();
    if st.failure.is_none() && st.config.check_leaks {
        let leaked = st.regions.values().filter(|r| r.live).count();
        if leaked > 0 {
            st.failure = Some(format!(
                "leak: {leaked} memory region(s) registered as fresh were never retired \
                 by the end of the execution"
            ));
        }
    }
    let failure = st.failure.take();
    let relaxed = std::mem::take(&mut st.relaxed);
    let explorer = std::mem::replace(&mut st.explorer, Explorer::new(None));
    let seed = explorer.seed();
    drop(st);
    (explorer, failure, relaxed, seed)
}

/// Explores the schedule space of `f` (see [`crate::explore`]).
pub(crate) fn explore_impl(config: Config, f: impl Fn() + Sync, replay: Option<String>) -> Report {
    assert!(
        ctx().is_none(),
        "nested model executions are not supported"
    );
    let replay_choices = replay.as_ref().map(|seed| {
        parse_seed(seed).unwrap_or_else(|| {
            panic!("invalid replay seed {seed:?}: must be base-36 thread ids")
        })
    });
    let mut explorer = Explorer::new(replay_choices);
    let mut report = Report {
        schedules: 0,
        complete: false,
        failure: None,
        relaxed: BTreeSet::new(),
    };
    loop {
        let (ex, failure, relaxed, seed) = run_one(&config, explorer, &f);
        explorer = ex;
        report.schedules += 1;
        if report.relaxed.len() < 256 {
            report.relaxed.extend(relaxed);
        }
        if let Some(message) = failure {
            report.failure = Some(Failure { seed, message });
            return report;
        }
        if !explorer.advance() {
            report.complete = true;
            return report;
        }
        if report.schedules >= config.max_schedules {
            return report;
        }
    }
}
