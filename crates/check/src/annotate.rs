//! Annotation hooks that shimmed code plants at memory-lifecycle and
//! raw-buffer access points. All of them compile to nothing in a
//! normal build and to model-checker bookkeeping under
//! `--cfg lsgd_model` (and only inside a model execution).
//!
//! * [`fresh`] / [`retire`] bracket the lifetime of a heap region the
//!   protocol manages manually (queue segments, parameter-vector
//!   headers, pooled gradient buffers). The checker flags double
//!   frees, frees of never-registered regions, frees that are not
//!   happens-after every recorded access to the region
//!   (use-after-free by another thread), later accesses to a retired
//!   region, and — at the end of an execution — regions never retired
//!   (leaks, unless [`crate::Config::check_leaks`] is off).
//! * [`data_read`] / [`data_write`] record a non-atomic access to a
//!   raw buffer (e.g. the `f32` parameter payload behind
//!   `ParamVec::theta`) so it participates in happens-before race
//!   detection. The address is an opaque key: annotate the buffer's
//!   base address consistently and the whole buffer is treated as one
//!   object — races between disjoint elements of the *same* buffer
//!   are reported too, which is exactly the paper's consistency model
//!   (a reader must be ordered with the whole publication).

/// Registers `[addr, addr + len)` as a freshly allocated region,
/// clearing any tracking state a recycled address range may carry.
#[inline]
pub fn fresh(addr: usize, len: usize) {
    #[cfg(lsgd_model)]
    if let Some(c) = crate::exec::ctx() {
        c.exec.fresh(addr, len);
    }
    #[cfg(not(lsgd_model))]
    {
        let _ = (addr, len);
    }
}

/// Retires (frees) a region previously registered with [`fresh`].
#[inline]
#[cfg_attr(lsgd_model, track_caller)]
pub fn retire(addr: usize, len: usize) {
    #[cfg(lsgd_model)]
    if let Some(c) = crate::exec::ctx() {
        c.exec.retire(c.tid, addr, len, std::panic::Location::caller());
    }
    #[cfg(not(lsgd_model))]
    {
        let _ = (addr, len);
    }
}

/// Records a non-atomic read of the object keyed by `addr`.
#[inline]
#[cfg_attr(lsgd_model, track_caller)]
pub fn data_read(addr: usize) {
    #[cfg(lsgd_model)]
    if let Some(c) = crate::exec::ctx() {
        c.exec
            .data_access(c.tid, addr, false, std::panic::Location::caller());
    }
    #[cfg(not(lsgd_model))]
    {
        let _ = addr;
    }
}

/// Records a non-atomic write of the object keyed by `addr`.
#[inline]
#[cfg_attr(lsgd_model, track_caller)]
pub fn data_write(addr: usize) {
    #[cfg(lsgd_model)]
    if let Some(c) = crate::exec::ctx() {
        c.exec
            .data_access(c.tid, addr, true, std::panic::Location::caller());
    }
    #[cfg(not(lsgd_model))]
    {
        let _ = addr;
    }
}
