//! Tier-1 enforcement of the ordering-audit lint: `cargo test` fails if
//! any `Ordering::Relaxed` / `Ordering::SeqCst` site in `crates/` lacks
//! an adjacent `// ORDERING:` justification. The standalone
//! `ordering_audit` binary reports the same thing for CI and humans.

use lsgd_check::audit;

#[test]
fn ordering_audit_is_clean() {
    let root = audit::workspace_root();
    let violations = audit::audit_crates(&root).expect("failed to scan crates/");
    if !violations.is_empty() {
        let mut msg = String::from("unjustified ordering sites:\n");
        for v in &violations {
            msg.push_str(&format!("  {v}\n"));
        }
        panic!("{msg}");
    }
}
