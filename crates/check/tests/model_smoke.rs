//! Self-tests for the model checker: known-racy toys must be caught
//! (with deterministic replay), known-correct protocols must pass, and
//! the allocation-lifecycle checks must flag leaks/double-frees/UAF.
//!
//! Run with `RUSTFLAGS="--cfg lsgd_model" cargo test -p lsgd_check`;
//! without the cfg the file compiles to nothing (the shims would not
//! route through the scheduler, so there would be nothing to test).
#![cfg(lsgd_model)]

use lsgd_check::sync::{AtomicBool, AtomicU32, Ordering, UnsafeCell};
use lsgd_check::{annotate, thread, Config, Report};
use std::sync::Arc;

fn cfg() -> Config {
    Config {
        preemption_bound: Some(2),
        ..Config::default()
    }
}

/// Two unsynchronized writers to one cell: a textbook data race.
fn racy_writes() {
    let cell = Arc::new(UnsafeCell::new(0u32));
    let c2 = Arc::clone(&cell);
    let t = thread::spawn(move || {
        c2.with_mut(|p| unsafe { *p = 1 });
    });
    cell.with_mut(|p| unsafe { *p = 2 });
    let _ = t.join();
}

#[test]
fn catches_unsynchronized_writes() {
    let report = lsgd_check::explore(cfg(), racy_writes);
    let failure = report.failure.expect("racy toy must fail");
    assert!(
        failure.message.contains("data race"),
        "unexpected failure: {}",
        failure.message
    );
}

#[test]
fn release_acquire_message_passing_passes() {
    let report = lsgd_check::explore(cfg(), || {
        let flag = Arc::new(AtomicBool::new(false));
        let data = Arc::new(UnsafeCell::new(0u32));
        let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
        let t = thread::spawn(move || {
            d2.with_mut(|p| unsafe { *p = 42 });
            // ORDERING: Release publishes the data write to the acquiring reader.
            f2.store(true, Ordering::Release);
        });
        // ORDERING: Acquire pairs with the Release store above.
        if flag.load(Ordering::Acquire) {
            data.with(|p| assert_eq!(unsafe { *p }, 42));
        }
        let _ = t.join();
    });
    assert!(
        report.failure.is_none(),
        "correct protocol flagged: {:?}",
        report.failure
    );
    assert!(report.complete, "bounded space should be exhausted");
    assert!(report.schedules > 1, "must explore more than one schedule");
}

/// The same protocol with the Release store weakened to Relaxed: the
/// reader can observe `flag == true` without a happens-before edge to
/// the data write — the checker must call the subsequent read a race.
#[test]
fn weakened_release_is_caught() {
    let report = lsgd_check::explore(cfg(), || {
        let flag = Arc::new(AtomicBool::new(false));
        let data = Arc::new(UnsafeCell::new(0u32));
        let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
        let t = thread::spawn(move || {
            d2.with_mut(|p| unsafe { *p = 42 });
            // ORDERING: deliberately wrong (the bug under test).
            f2.store(true, Ordering::Relaxed);
        });
        // ORDERING: Acquire, but the store it pairs with is Relaxed.
        if flag.load(Ordering::Acquire) {
            data.with(|p| unsafe {
                std::ptr::read_volatile(p);
            });
        }
        let _ = t.join();
    });
    let failure = report.failure.expect("weakened publication must fail");
    assert!(
        failure.message.contains("data race"),
        "unexpected failure: {}",
        failure.message
    );
}

/// A failing seed replays to the identical interleaving and message —
/// the determinism regression test from the issue checklist.
#[test]
fn failing_seed_replays_identically() {
    let first = lsgd_check::explore(cfg(), racy_writes);
    let f1 = first.failure.expect("racy toy must fail");
    for _ in 0..2 {
        let again: Report = lsgd_check::replay(cfg(), &f1.seed, racy_writes);
        assert_eq!(again.schedules, 1, "replay must run exactly one schedule");
        let f2 = again.failure.expect("replay must reproduce the failure");
        assert_eq!(f2.seed, f1.seed);
        assert_eq!(f2.message, f1.message);
    }
}

#[test]
fn leaked_region_is_reported() {
    let report = lsgd_check::explore(cfg(), || {
        let b = Box::into_raw(Box::new(0u64));
        annotate::fresh(b as usize, std::mem::size_of::<u64>());
        // Reclaim the real allocation but never `retire` it: a model leak.
        unsafe { drop(Box::from_raw(b)) };
    });
    let failure = report.failure.expect("leak must be reported");
    assert!(failure.message.contains("leak"), "got: {}", failure.message);
}

#[test]
fn double_free_is_reported() {
    let report = lsgd_check::explore(cfg(), || {
        annotate::fresh(0x1000, 64);
        annotate::retire(0x1000, 64);
        annotate::retire(0x1000, 64);
    });
    let failure = report.failure.expect("double free must be reported");
    assert!(
        failure.message.contains("double free"),
        "got: {}",
        failure.message
    );
}

#[test]
fn use_after_free_is_reported() {
    let report = lsgd_check::explore(cfg(), || {
        annotate::fresh(0x2000, 64);
        annotate::data_write(0x2000);
        annotate::retire(0x2000, 64);
        annotate::data_read(0x2000);
    });
    let failure = report.failure.expect("use-after-free must be reported");
    assert!(
        failure.message.contains("use-after-free"),
        "got: {}",
        failure.message
    );
}

/// An unsynchronized cross-thread Relaxed load is surfaced as a
/// diagnostic (not a failure by default).
#[test]
fn unsynced_relaxed_read_is_diagnosed() {
    let report = lsgd_check::explore(cfg(), || {
        let a = Arc::new(AtomicU32::new(0));
        let a2 = Arc::clone(&a);
        let t = thread::spawn(move || {
            // ORDERING: deliberately unsynchronized (diagnostic under test).
            a2.store(1, Ordering::Relaxed);
        });
        // ORDERING: deliberately unsynchronized (diagnostic under test).
        let _ = a.load(Ordering::Relaxed);
        let _ = t.join();
    });
    assert!(report.failure.is_none(), "diagnostic must not fail the run");
    assert!(
        !report.relaxed.is_empty(),
        "expected at least one relaxed-read diagnostic"
    );
}

/// Values are sequentially consistent under the model: two Relaxed
/// increments always sum, in every explored schedule.
#[test]
fn counter_increments_are_exact() {
    let report = lsgd_check::explore(cfg(), || {
        let a = Arc::new(AtomicU32::new(0));
        let a2 = Arc::clone(&a);
        let t = thread::spawn(move || {
            // ORDERING: Relaxed is fine for a pure counter (no guarded data).
            a2.fetch_add(1, Ordering::Relaxed);
        });
        // ORDERING: Relaxed is fine for a pure counter (no guarded data).
        a.fetch_add(1, Ordering::Relaxed);
        let _ = t.join();
        // ORDERING: reader joined the writer; Relaxed suffices here.
        assert_eq!(a.load(Ordering::Relaxed), 2);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
}

/// A panic inside the closure fails the schedule with the panic text
/// and a usable seed.
#[test]
fn assertion_failures_carry_a_seed() {
    let report = lsgd_check::explore(cfg(), || {
        let a = Arc::new(AtomicU32::new(0));
        let a2 = Arc::clone(&a);
        let t = thread::spawn(move || {
            // ORDERING: Relaxed counter bump; the test is about panics.
            a2.fetch_add(1, Ordering::Relaxed);
        });
        let _ = t.join();
        // ORDERING: after join; Relaxed suffices.
        assert_eq!(a.load(Ordering::Relaxed), 99, "deliberate failure");
    });
    let failure = report.failure.expect("assertion must fail the schedule");
    assert!(failure.message.contains("deliberate failure"));
    let again = lsgd_check::replay(cfg(), &failure.seed, || {
        let a = Arc::new(AtomicU32::new(0));
        let a2 = Arc::clone(&a);
        let t = thread::spawn(move || {
            // ORDERING: Relaxed counter bump; the test is about panics.
            a2.fetch_add(1, Ordering::Relaxed);
        });
        let _ = t.join();
        // ORDERING: after join; Relaxed suffices.
        assert_eq!(a.load(Ordering::Relaxed), 99, "deliberate failure");
    });
    assert_eq!(
        again.failure.expect("replay reproduces").message,
        failure.message
    );
}
