#![warn(missing_docs)]
//! Umbrella crate re-exporting the full Leashed-SGD reproduction API.
pub use lsgd_core as core;
pub use lsgd_data as data;
pub use lsgd_dynamics as dynamics;
pub use lsgd_fault as fault;
pub use lsgd_metrics as metrics;
pub use lsgd_nn as nn;
pub use lsgd_sync as sync;
pub use lsgd_tensor as tensor;
pub use lsgd_trace as trace;
